package query

import (
	"errors"
	"testing"
)

// TestSeedZeroRequestable pins the Options.Seed contract: nil means the
// default seed 1, while an explicit pointer — including to 0, which the
// old int64 field silently coerced to the default — is honored exactly.
func TestSeedZeroRequestable(t *testing.T) {
	if got := (Options{}).seed(); got != 1 {
		t.Fatalf("default seed = %d, want 1", got)
	}
	if got := (Options{Seed: SeedPtr(0)}).seed(); got != 0 {
		t.Fatalf("explicit seed 0 = %d, want 0", got)
	}
	if got := (Options{Seed: SeedPtr(-7)}).seed(); got != -7 {
		t.Fatalf("explicit seed -7 = %d, want -7", got)
	}
}

// TestValidateRejectsNegativeBudgets pins the Options contract: zero
// means "use the default", but negative budgets — which the old code
// silently coerced to the default — are explicit errors.
func TestValidateRejectsNegativeBudgets(t *testing.T) {
	good := []Options{
		{},
		{Samples: 1, EnumWorldLimit: 1, LocalWorldLimit: 1},
		{Method: MethodAuto},
		{Method: MethodExact},
		{Method: MethodEnumerate},
		{Method: MethodSample},
		{Seed: SeedPtr(-5)}, // seeds may be negative; they are not budgets
	}
	for _, o := range good {
		if err := o.Validate(); err != nil {
			t.Fatalf("Validate(%+v) = %v, want nil", o, err)
		}
	}
	bad := []Options{
		{Samples: -1},
		{EnumWorldLimit: -10},
		{LocalWorldLimit: -1},
		{Method: "fuzzy"},
	}
	for _, o := range bad {
		err := o.Validate()
		if !errors.Is(err, ErrBadOptions) {
			t.Fatalf("Validate(%+v) = %v, want ErrBadOptions", o, err)
		}
	}
}

// TestEvalValidatesOptions checks validation is enforced at the engine
// entry points, not just available.
func TestEvalValidatesOptions(t *testing.T) {
	q := MustCompile(`//a`)
	if _, err := Eval(nil, q, Options{Samples: -3}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Eval with negative samples = %v, want ErrBadOptions", err)
	}
	if _, err := EvalIndexed(nil, q, Options{EnumWorldLimit: -1}, nil); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("EvalIndexed with negative enum limit = %v, want ErrBadOptions", err)
	}
}

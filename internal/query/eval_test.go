package query_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pxml"
	"repro/internal/pxmltest"
	"repro/internal/query"
	"repro/internal/xmlcodec"
)

func decode(t *testing.T, src string) *pxml.Tree {
	t.Helper()
	tr, err := xmlcodec.DecodeString(src)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return tr
}

const catalog = `
<catalog>
	<movie><title>Jaws</title><year>1975</year><genre>Horror</genre><director>Steven Spielberg</director></movie>
	<movie><title>Jaws 2</title><year>1978</year><genre>Horror</genre><director>Jeannot Szwarc</director></movie>
	<movie><title>Die Hard: With a Vengeance</title><year>1995</year><genre>Action</genre><director>John McTiernan</director></movie>
	<movie><title>Mission: Impossible II</title><year>2000</year><genre>Action</genre><director>John Woo</director></movie>
</catalog>`

func evalCertainDoc(t *testing.T, doc, q string) map[string]float64 {
	t.Helper()
	tr := decode(t, doc)
	res, err := query.Eval(tr, query.MustCompile(q), query.Options{})
	if err != nil {
		t.Fatalf("Eval(%s): %v", q, err)
	}
	out := map[string]float64{}
	for _, a := range res.Answers {
		out[a.Value] = a.P
	}
	return out
}

func TestCertainDocumentQueries(t *testing.T) {
	cases := []struct {
		q    string
		want []string
	}{
		{`//movie/title`, []string{"Jaws", "Jaws 2", "Die Hard: With a Vengeance", "Mission: Impossible II"}},
		{`/catalog/movie/year`, []string{"1975", "1978", "1995", "2000"}},
		{`//movie[.//genre="Horror"]/title`, []string{"Jaws", "Jaws 2"}},
		{`//movie[some $d in .//director satisfies contains($d,"John")]/title`,
			[]string{"Die Hard: With a Vengeance", "Mission: Impossible II"}},
		{`//movie[year="1995"]/title`, []string{"Die Hard: With a Vengeance"}},
		{`//movie[contains(title,"Jaws")]/year`, []string{"1975", "1978"}},
		{`//movie[not(genre="Horror")]/title`, []string{"Die Hard: With a Vengeance", "Mission: Impossible II"}},
		{`//movie[genre="Horror" and year="1975"]/title`, []string{"Jaws"}},
		{`//movie[genre="Horror" or year="2000"]/title`, []string{"Jaws", "Jaws 2", "Mission: Impossible II"}},
		{`//movie[genre="Comedy"]/title`, nil},
		{`//movie/title/text()`, []string{"Jaws", "Jaws 2", "Die Hard: With a Vengeance", "Mission: Impossible II"}},
		{`//genre`, []string{"Horror", "Action"}},
		{`/catalog/*/director`, []string{"Steven Spielberg", "Jeannot Szwarc", "John McTiernan", "John Woo"}},
		{`//nothing`, nil},
		{`/movie/title`, nil}, // movie is not the document element
	}
	for _, tc := range cases {
		t.Run(tc.q, func(t *testing.T) {
			got := evalCertainDoc(t, catalog, tc.q)
			if len(got) != len(tc.want) {
				t.Fatalf("answers = %v, want %v", got, tc.want)
			}
			for _, w := range tc.want {
				if math.Abs(got[w]-1) > 1e-9 {
					t.Fatalf("P(%q) = %v, want 1 (certain doc); all: %v", w, got[w], got)
				}
			}
		})
	}
}

func TestFig2Queries(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	// Phone numbers: 1111 exists in the merged world (0.6×0.5) and the
	// separate world (0.4) = 0.7; same for 2222.
	res, err := query.Eval(tr, query.MustCompile(`//person/tel`), query.Options{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if res.Method != query.MethodExact {
		t.Fatalf("method = %v, want exact", res.Method)
	}
	if p := res.P("1111"); math.Abs(p-0.7) > 1e-9 {
		t.Fatalf("P(1111) = %v, want 0.7", p)
	}
	if p := res.P("2222"); math.Abs(p-0.7) > 1e-9 {
		t.Fatalf("P(2222) = %v, want 0.7", p)
	}
	// The person named John exists certainly.
	res, err = query.Eval(tr, query.MustCompile(`//person/nm`), query.Options{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if p := res.P("John"); math.Abs(p-1) > 1e-9 {
		t.Fatalf("P(John) = %v, want 1", p)
	}
	// Predicate query: person with phone 1111.
	res, err = query.Eval(tr, query.MustCompile(`//person[tel="1111"]/nm`), query.Options{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if p := res.P("John"); math.Abs(p-0.7) > 1e-9 {
		t.Fatalf("P(John | tel=1111) = %v, want 0.7", p)
	}
}

func TestExactMatchesEnumerationOnFixtures(t *testing.T) {
	queries := []string{
		`//person/tel`,
		`//person[tel="1111"]/nm`,
		`//person[tel]/tel`,
		`//addressbook/person/nm`,
		`//person[nm="John" and tel="2222"]/tel`,
		`//person[not(tel="1111")]/nm`,
		`//*`,
		`//person/nm/text()`,
	}
	tr := pxmltest.Fig2Tree()
	for _, qs := range queries {
		q := query.MustCompile(qs)
		exact, err := query.EvalExact(tr, q, 0)
		if err != nil {
			t.Fatalf("EvalExact(%s): %v", qs, err)
		}
		enum, err := query.EvalEnumerate(tr, q, 1000)
		if err != nil {
			t.Fatalf("EvalEnumerate(%s): %v", qs, err)
		}
		compareAnswers(t, qs, exact, enum, 1e-9)
	}
}

func compareAnswers(t *testing.T, label string, got, want []query.Answer, tol float64) {
	t.Helper()
	gm := map[string]float64{}
	for _, a := range got {
		gm[a.Value] = a.P
	}
	wm := map[string]float64{}
	for _, a := range want {
		wm[a.Value] = a.P
	}
	for v, p := range wm {
		if math.Abs(gm[v]-p) > tol {
			t.Fatalf("%s: P(%q) = %v, want %v\ngot %v\nwant %v", label, v, gm[v], p, got, want)
		}
	}
	for v := range gm {
		if _, ok := wm[v]; !ok && gm[v] > tol {
			t.Fatalf("%s: unexpected answer %q (P=%v)", label, v, gm[v])
		}
	}
}

// The central correctness property: on random documents and a catalog of
// query shapes, exact evaluation agrees with exhaustive enumeration.
func TestExactMatchesEnumerationOnRandomDocuments(t *testing.T) {
	queries := []*query.Query{
		query.MustCompile(`//a`),
		query.MustCompile(`//movie/title`),
		query.MustCompile(`//movie[title]/title`),
		query.MustCompile(`//movie[.//title="x"]/title`),
		query.MustCompile(`//a[b="x"]/c`),
		query.MustCompile(`//a//b`),
		query.MustCompile(`/movie//title`),
		query.MustCompile(`//b[not(.//c)]/a`),
		query.MustCompile(`//a[contains(., "x")]`),
		query.MustCompile(`//movie[some $t in .//title satisfies contains($t, "J")]/c`),
		query.MustCompile(`//*[a or b]/c/text()`),
	}
	rng := rand.New(rand.NewSource(77))
	cfg := pxmltest.DefaultGenConfig()
	cfg.MaxDepth = 4
	checked := 0
	for i := 0; i < 60; i++ {
		tr := pxmltest.RandomTree(rng, cfg)
		if wc := tr.WorldCount(); !wc.IsInt64() || wc.Int64() > 2000 {
			continue
		}
		for _, q := range queries {
			exact, err := query.EvalExact(tr, q, 100000)
			if err != nil {
				t.Fatalf("doc %d EvalExact(%s): %v\n%s", i, q, err, tr)
			}
			enum, err := query.EvalEnumerate(tr, q, 5000)
			if err != nil {
				t.Fatalf("doc %d EvalEnumerate(%s): %v", i, q, err)
			}
			compareAnswers(t, q.String(), exact, enum, 1e-9)
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("too few property checks ran: %d", checked)
	}
}

func TestSamplingConvergesToExact(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	q := query.MustCompile(`//person/tel`)
	exact, err := query.EvalExact(tr, q, 0)
	if err != nil {
		t.Fatalf("EvalExact: %v", err)
	}
	sampled := query.EvalSample(tr, q, 30000, 42)
	compareAnswers(t, "sampling", sampled, exact, 0.02)
}

func TestEvalFallsBackToSampling(t *testing.T) {
	// Force sampling by setting tiny limits.
	tr := pxmltest.Fig2Tree()
	q := query.MustCompile(`//person/tel`)
	res, err := query.Eval(tr, q, query.Options{LocalWorldLimit: 1, EnumWorldLimit: 1, Samples: 5000, Seed: query.SeedPtr(3)})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	// LocalWorldLimit=1 rejects exact only if some anchor has >1 local
	// world; tel anchors are leaves (1 world), so exact still succeeds.
	if res.Method != query.MethodExact {
		t.Fatalf("method = %v", res.Method)
	}
	// A predicate on person forces local enumeration of the person
	// subtree, which has 2 worlds > 1.
	q2 := query.MustCompile(`//person[tel]/nm`)
	res, err = query.Eval(tr, q2, query.Options{LocalWorldLimit: 1, EnumWorldLimit: 1, Samples: 5000, Seed: query.SeedPtr(3)})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if res.Method != query.MethodSample {
		t.Fatalf("method = %v, want sample", res.Method)
	}
	if res.SampledWorlds != 5000 {
		t.Fatalf("SampledWorlds = %d", res.SampledWorlds)
	}
}

func TestEvalUsesEnumerationWhenSmall(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	q := query.MustCompile(`//person[tel]/nm`)
	res, err := query.Eval(tr, q, query.Options{LocalWorldLimit: 1, EnumWorldLimit: 100})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if res.Method != query.MethodEnumerate {
		t.Fatalf("method = %v, want enumerate", res.Method)
	}
	if p := res.P("John"); math.Abs(p-1) > 1e-9 {
		t.Fatalf("P(John) = %v", p)
	}
}

func TestResultHelpers(t *testing.T) {
	r := query.Result{Answers: []query.Answer{{Value: "a", P: 0.9}, {Value: "b", P: 0.5}}}
	if len(r.Top(1)) != 1 || r.Top(1)[0].Value != "a" {
		t.Fatalf("Top(1) wrong")
	}
	if len(r.Top(5)) != 2 {
		t.Fatalf("Top beyond length should clamp")
	}
	if r.P("b") != 0.5 || r.P("zzz") != 0 {
		t.Fatalf("P lookup wrong")
	}
}

func TestAnswersRankedDescending(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	res, err := query.Eval(tr, query.MustCompile(`//person/*`), query.Options{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	for i := 1; i < len(res.Answers); i++ {
		if res.Answers[i].P > res.Answers[i-1].P+1e-12 {
			t.Fatalf("answers not ranked: %v", res.Answers)
		}
	}
}

func TestStringValueConcatenation(t *testing.T) {
	tr := decode(t, `<movie><title>Jaws</title><year>1975</year></movie>`)
	got := evalCertainDoc(t, `<r><movie><title>Jaws</title><year>1975</year></movie></r>`, `//movie[contains(., "Jaws")]/year`)
	if math.Abs(got["1975"]-1) > 1e-9 {
		t.Fatalf("string-value contains failed: %v", got)
	}
	_ = tr
	v := query.StringValue(decode(t, `<movie><title>Jaws</title><year>1975</year></movie>`).RootElements()[0])
	if v != "Jaws 1975" {
		t.Fatalf("StringValue = %q", v)
	}
}

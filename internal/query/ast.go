// Package query implements the XPath/XQuery subset IMPrECISE needs for
// probabilistic querying (paper §VI), replacing MonetDB/XQuery as the
// query-processing substrate.
//
// The semantics of a query over a probabilistic document is the set of
// answers obtained by evaluating it in each possible world separately;
// answers equal across worlds are amalgamated and ranked by probability.
// Three evaluators implement this:
//
//   - Exact: compositional probability propagation over the layered tree,
//     exact for the tree-factorized distribution, with local world
//     enumeration inside "anchor" subtrees to handle predicate/value
//     correlations.
//   - Enumerate: full possible-world enumeration (ground truth, guarded).
//   - Sample: seeded Monte-Carlo estimation for very large documents.
package query

import (
	"fmt"
	"strings"
)

// Query is a compiled path query.
type Query struct {
	Steps []Step
	src   string
}

// String returns the original query text.
func (q *Query) String() string { return q.src }

// Step is one location step.
type Step struct {
	// Desc applies the descendant-or-self axis before matching (the step
	// was preceded by //).
	Desc bool
	// Name is the element tag to match; "*" matches any element.
	Name string
	// IsText marks a text() step, which selects the context element's own
	// text value rather than child elements. Only valid as the last step.
	IsText bool
	// Preds are the step's predicates, all of which must hold.
	Preds []Pred
}

func (s Step) label() string {
	n := s.Name
	if s.IsText {
		n = "text()"
	}
	var b strings.Builder
	if s.Desc {
		b.WriteString("//")
	} else {
		b.WriteString("/")
	}
	b.WriteString(n)
	for _, p := range s.Preds {
		fmt.Fprintf(&b, "[%s]", p)
	}
	return b.String()
}

// RelPath is a path relative to a context element, used inside predicates.
type RelPath struct {
	// Self is true for the bare "." path (the context element itself).
	Self bool
	// Steps navigate from the context element.
	Steps []Step
}

func (p RelPath) String() string {
	var b strings.Builder
	if p.Self {
		b.WriteString(".")
	}
	for _, s := range p.Steps {
		b.WriteString(s.label())
	}
	return b.String()
}

// Pred is a predicate expression.
type Pred interface {
	fmt.Stringer
	isPred()
}

// PredExists holds when some node reached by Path satisfies Cond. It is
// the normal form of `[path]`, `[path = "lit"]`, `[contains(path, "lit")]`
// and `[some $v in path satisfies …]`, all of which have existential
// semantics over the path's node set.
type PredExists struct {
	Path RelPath
	Cond ValueCond
}

// PredAnd holds when both operands hold.
type PredAnd struct{ A, B Pred }

// PredOr holds when either operand holds.
type PredOr struct{ A, B Pred }

// PredNot holds when the operand does not.
type PredNot struct{ P Pred }

func (PredExists) isPred() {}
func (PredAnd) isPred()    {}
func (PredOr) isPred()     {}
func (PredNot) isPred()    {}

func (p PredExists) String() string {
	switch c := p.Cond.(type) {
	case CondAny:
		return p.Path.String()
	case CondEq:
		return fmt.Sprintf("%s = %q", p.Path, c.Lit)
	case CondContains:
		return fmt.Sprintf("contains(%s, %q)", p.Path, c.Lit)
	default:
		return fmt.Sprintf("%s ~ %s", p.Path, p.Cond)
	}
}
func (p PredAnd) String() string { return fmt.Sprintf("(%s and %s)", p.A, p.B) }
func (p PredOr) String() string  { return fmt.Sprintf("(%s or %s)", p.A, p.B) }
func (p PredNot) String() string { return fmt.Sprintf("not(%s)", p.P) }

// ValueCond is a condition on a node's string value.
type ValueCond interface {
	Match(v string) bool
	String() string
}

// CondAny accepts any node (pure existence test).
type CondAny struct{}

// CondEq tests string equality.
type CondEq struct{ Lit string }

// CondContains tests substring containment.
type CondContains struct{ Lit string }

func (CondAny) Match(string) bool          { return true }
func (CondAny) String() string             { return "*" }
func (c CondEq) Match(v string) bool       { return v == c.Lit }
func (c CondEq) String() string            { return "= " + c.Lit }
func (c CondContains) Match(v string) bool { return strings.Contains(v, c.Lit) }
func (c CondContains) String() string      { return "contains " + c.Lit }

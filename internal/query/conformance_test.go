package query_test

import (
	"math"
	"testing"

	"repro/internal/query"
)

// A richer catalog exercising nesting, attributes (shredded to @-tags),
// repeated tags and mixed depths.
const conformanceDoc = `
<library city="Enschede">
	<shelf id="s1">
		<book lang="en">
			<title>Probabilistic Databases</title>
			<author><nm>Suciu</nm></author>
			<author><nm>Koch</nm></author>
			<tag>databases</tag>
			<tag>uncertainty</tag>
		</book>
		<book lang="nl">
			<title>Goed Genoeg</title>
			<author><nm>de Keijzer</nm></author>
			<tag>integration</tag>
		</book>
	</shelf>
	<shelf id="s2">
		<book lang="en">
			<title>XML Foundations</title>
			<author><nm>Suciu</nm></author>
			<tag>databases</tag>
			<box><book lang="fr"><title>Nested</title><author><nm>Inner</nm></author></book></box>
		</book>
	</shelf>
</library>`

func TestXPathConformanceCertain(t *testing.T) {
	cases := []struct {
		q    string
		want []string
	}{
		// Axis combinations.
		{`/library/shelf/book/title`, []string{"Probabilistic Databases", "Goed Genoeg", "XML Foundations"}},
		{`//book/title`, []string{"Probabilistic Databases", "Goed Genoeg", "XML Foundations", "Nested"}},
		{`//box//title`, []string{"Nested"}},
		{`/library//title`, []string{"Probabilistic Databases", "Goed Genoeg", "XML Foundations", "Nested"}},
		{`//shelf/book/box/book/title`, []string{"Nested"}},
		{`/shelf/book/title`, nil}, // shelf is not the document element
		// Wildcards.
		{`//author/*`, []string{"Suciu", "Koch", "de Keijzer", "Inner"}},
		{`/library/*/book/title`, []string{"Probabilistic Databases", "Goed Genoeg", "XML Foundations"}},
		// Attributes as @-tags.
		{`//book/@lang`, []string{"en", "nl", "fr"}},
		{`//shelf/@id`, []string{"s1", "s2"}},
		{`/library/@city`, []string{"Enschede"}},
		{`//book[@lang="nl"]/title`, []string{"Goed Genoeg"}},
		// Predicates: existence, equality, contains.
		{`//book[tag]/title`, []string{"Probabilistic Databases", "Goed Genoeg", "XML Foundations"}},
		{`//book[tag="uncertainty"]/title`, []string{"Probabilistic Databases"}},
		{`//book[contains(title,"XML")]/title`, []string{"XML Foundations"}},
		{`//book[author/nm="Suciu"]/title`, []string{"Probabilistic Databases", "XML Foundations"}},
		// Both the outer book (via its box) and the nested book itself
		// have a descendant nm="Inner".
		{`//book[.//nm="Inner"]/title`, []string{"XML Foundations", "Nested"}},
		{`//shelf[book/tag="integration"]/@id`, []string{"s1"}},
		// Boolean connectives and not().
		{`//book[tag="databases" and @lang="en"]/title`, []string{"Probabilistic Databases", "XML Foundations"}},
		{`//book[tag="integration" or tag="uncertainty"]/title`, []string{"Probabilistic Databases", "Goed Genoeg"}},
		{`//book[not(tag)]/title`, []string{"Nested"}},
		{`//book[not(author/nm="Suciu")]/title`, []string{"Goed Genoeg", "Nested"}},
		{`//book[(tag="databases" or tag="integration") and not(@lang="nl")]/title`,
			[]string{"Probabilistic Databases", "XML Foundations"}},
		// some … satisfies.
		{`//book[some $a in author/nm satisfies contains($a, "Keijzer")]/title`, []string{"Goed Genoeg"}},
		{`//book[some $a in .//nm satisfies $a = "Koch"]/title`, []string{"Probabilistic Databases"}},
		// text() steps.
		{`//book/title/text()`, []string{"Probabilistic Databases", "Goed Genoeg", "XML Foundations", "Nested"}},
		{`//author/nm/text()`, []string{"Suciu", "Koch", "de Keijzer", "Inner"}},
		// Self path and string values.
		{`//book[contains(., "Suciu")]/@lang`, []string{"en"}},
		{`//nm[.="Koch"]`, []string{"Koch"}},
		// Predicates on intermediate steps.
		{`//shelf[@id="s2"]/book/title`, []string{"XML Foundations"}},
		{`//shelf[@id="s2"]//title`, []string{"XML Foundations", "Nested"}},
	}
	tr := decode(t, conformanceDoc)
	for _, tc := range cases {
		t.Run(tc.q, func(t *testing.T) {
			q, err := query.Compile(tc.q)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			// Certain world evaluation.
			got := query.EvalWorld(q, tr.RootElements())
			if len(got) != len(tc.want) {
				t.Fatalf("EvalWorld = %v, want %v", keys(got), tc.want)
			}
			for _, w := range tc.want {
				if !got[w] {
					t.Fatalf("EvalWorld missing %q: %v", w, keys(got))
				}
			}
			// Exact evaluation must agree (probability 1 each).
			exact, err := query.EvalExact(tr, q, 0)
			if err != nil {
				t.Fatalf("EvalExact: %v", err)
			}
			if len(exact) != len(tc.want) {
				t.Fatalf("EvalExact = %v, want %v", exact, tc.want)
			}
			for _, a := range exact {
				if math.Abs(a.P-1) > 1e-9 {
					t.Fatalf("P(%q) = %v on certain doc", a.Value, a.P)
				}
			}
			// Enumeration agrees trivially (1 world) — and guards against
			// divergence between the evaluation paths.
			enum, err := query.EvalEnumerate(tr, q, 10)
			if err != nil {
				t.Fatalf("EvalEnumerate: %v", err)
			}
			compareAnswers(t, tc.q, exact, enum, 1e-9)
		})
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// A probabilistic fixture with hand-computed marginals: an uncertain book
// (70% present), an uncertain tag value, and a certain book.
const conformanceProbDoc = `
<library>
	<shelf>
		<_prob>
			<_poss p="0.7">
				<book>
					<title>Maybe</title>
					<_prob>
						<_poss p="0.4"><tag>databases</tag></_poss>
						<_poss p="0.6"><tag>ai</tag></_poss>
					</_prob>
				</book>
			</_poss>
			<_poss p="0.3"/>
		</_prob>
		<book><title>Always</title><tag>databases</tag></book>
	</shelf>
</library>`

func TestXPathConformanceProbabilistic(t *testing.T) {
	cases := []struct {
		q    string
		want map[string]float64
	}{
		{`//book/title`, map[string]float64{"Maybe": 0.7, "Always": 1}},
		{`//book[tag="databases"]/title`, map[string]float64{"Maybe": 0.7 * 0.4, "Always": 1}},
		{`//book[tag="ai"]/title`, map[string]float64{"Maybe": 0.7 * 0.6}},
		{`//tag`, map[string]float64{"databases": 1, "ai": 0.42}},
		{`//book[not(tag="ai")]/title`, map[string]float64{"Maybe": 0.28, "Always": 1}},
		{`//shelf[book/title="Maybe"]/book/title`, map[string]float64{"Maybe": 0.7, "Always": 0.7}},
	}
	tr := decode(t, conformanceProbDoc)
	for _, tc := range cases {
		t.Run(tc.q, func(t *testing.T) {
			q := query.MustCompile(tc.q)
			exact, err := query.EvalExact(tr, q, 0)
			if err != nil {
				t.Fatalf("EvalExact: %v", err)
			}
			gm := map[string]float64{}
			for _, a := range exact {
				gm[a.Value] = a.P
			}
			if len(gm) != len(tc.want) {
				t.Fatalf("answers = %v, want %v", exact, tc.want)
			}
			for v, p := range tc.want {
				if math.Abs(gm[v]-p) > 1e-9 {
					t.Fatalf("P(%q) = %v, want %v", v, gm[v], p)
				}
			}
			enum, err := query.EvalEnumerate(tr, q, 100)
			if err != nil {
				t.Fatalf("EvalEnumerate: %v", err)
			}
			compareAnswers(t, tc.q, exact, enum, 1e-9)
		})
	}
}

func TestExpectedCountConformance(t *testing.T) {
	tr := decode(t, conformanceProbDoc)
	cases := []struct {
		q    string
		want float64
	}{
		{`//book`, 1.7},
		{`//tag`, 1.7},
		{`//book[tag="databases"]`, 1 + 0.28},
		{`//title`, 1.7},
	}
	for _, tc := range cases {
		got, err := query.ExpectedCount(tr, query.MustCompile(tc.q), 0)
		if err != nil {
			t.Fatalf("ExpectedCount(%s): %v", tc.q, err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("ExpectedCount(%s) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

package query

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/pxml"
	"repro/internal/worlds"
)

// Conditioning implements the semantics behind user feedback (paper §I,
// §VII and ref [4]): feedback on query answers is traced back to possible
// worlds, and worlds contradicting the feedback are removed, which
// incrementally improves the integration.

// ErrContradiction is returned when feedback would eliminate every
// possible world.
var ErrContradiction = errors.New("query: feedback contradicts all possible worlds")

// ErrTooComplex is returned when conditioning exceeds its enumeration
// budgets.
var ErrTooComplex = errors.New("query: conditioning exceeds enumeration limits")

// ConditionAbsent conditions the document on the event "the query yields
// no answer with the given value" — the effect of a user rejecting an
// answer. Because the event is a conjunction of per-subtree events over
// independent choice points, the conditional distribution stays
// tree-factorized: choice probabilities are reweighted in place, and only
// anchor subtrees (where predicate/value correlations live) are rewritten
// by local enumeration. It returns the conditioned tree and the prior
// probability of the event.
func ConditionAbsent(t *pxml.Tree, q *Query, value string, localLimit int) (*pxml.Tree, float64, error) {
	if localLimit <= 0 {
		localLimit = DefaultLocalWorldLimit
	}
	if len(q.Steps) == 0 || q.Steps[0].IsText {
		return nil, 0, fmt.Errorf("%w: unsupported query shape", ErrTooComplex)
	}
	c := &conditioner{
		ev: &exactEval{
			q:          q,
			anchorIdx:  anchorIndex(q),
			localLimit: localLimit,
			localMemo:  make(map[localKey]map[string]float64),
			failMemo:   make(map[failKey]float64),
		},
		value: value,
		memo:  make(map[localKey]condResult),
	}
	root, p, err := c.cond(t.Root(), stateSet(1))
	if err != nil {
		return nil, 0, err
	}
	if p <= 0 || root == nil {
		return nil, 0, ErrContradiction
	}
	nt, err := pxml.NewTree(root)
	if err != nil {
		return nil, 0, fmt.Errorf("query: conditioning produced invalid tree: %v", err)
	}
	return nt, p, nil
}

type condResult struct {
	node *pxml.Node
	p    float64
	err  error
}

type conditioner struct {
	ev    *exactEval
	value string
	memo  map[localKey]condResult
}

// cond returns the conditioned version of the subtree plus the probability
// that the subtree produces no `value` answer. A nil node with p == 0
// means the event is impossible given this subtree exists.
func (c *conditioner) cond(n *pxml.Node, states stateSet) (*pxml.Node, float64, error) {
	if states == 0 {
		return n, 1, nil
	}
	key := localKey{e: n, s: states}
	if r, ok := c.memo[key]; ok {
		return r.node, r.p, r.err
	}
	node, p, err := c.condUncached(n, states)
	c.memo[key] = condResult{node: node, p: p, err: err}
	return node, p, err
}

func (c *conditioner) condUncached(n *pxml.Node, states stateSet) (*pxml.Node, float64, error) {
	switch n.Kind() {
	case pxml.KindProb:
		type alt struct {
			poss *pxml.Node
			w    float64
		}
		var alts []alt
		total := 0.0
		for _, poss := range n.Children() {
			np, f, err := c.cond(poss, states)
			if err != nil {
				return nil, 0, err
			}
			w := poss.Prob() * f
			if w <= 0 || np == nil {
				continue
			}
			alts = append(alts, alt{poss: np, w: w})
			total += w
		}
		if total <= 0 {
			return nil, 0, nil
		}
		nodes := make([]*pxml.Node, len(alts))
		for i, a := range alts {
			nodes[i] = pxml.NewPoss(a.w/total, a.poss.Children()...)
		}
		return pxml.NewProb(nodes...), total, nil

	case pxml.KindPoss:
		f := 1.0
		kids := n.Children()
		var newKids []*pxml.Node
		for i, el := range kids {
			ne, ef, err := c.cond(el, states)
			if err != nil {
				return nil, 0, err
			}
			if ef <= 0 || ne == nil {
				return nil, 0, nil
			}
			f *= ef
			if ne != el && newKids == nil {
				newKids = make([]*pxml.Node, len(kids))
				copy(newKids, kids[:i])
			}
			if newKids != nil {
				newKids[i] = ne
			}
		}
		if newKids == nil {
			return n, f, nil
		}
		return pxml.NewPoss(n.Prob(), newKids...), f, nil

	default: // element
		next, hit := c.ev.advance(n, states)
		if hit {
			return c.condAnchor(n, states)
		}
		if next == 0 {
			return n, 1, nil
		}
		f := 1.0
		kids := n.Children()
		var newKids []*pxml.Node
		for i, prob := range kids {
			np, pf, err := c.cond(prob, next)
			if err != nil {
				return nil, 0, err
			}
			if pf <= 0 || np == nil {
				return nil, 0, nil
			}
			f *= pf
			if np != prob && newKids == nil {
				newKids = make([]*pxml.Node, len(kids))
				copy(newKids, kids[:i])
			}
			if newKids != nil {
				newKids[i] = np
			}
		}
		if newKids == nil {
			return n, f, nil
		}
		return pxml.NewElem(n.Tag(), n.Text(), newKids...), f, nil
	}
}

// condAnchor conditions an anchor element by local world enumeration:
// worlds of the subtree that produce the rejected value are removed and
// the element is rebuilt as an explicit choice over the survivors.
func (c *conditioner) condAnchor(e *pxml.Node, states stateSet) (*pxml.Node, float64, error) {
	sub := pxml.CertainTree(e)
	wc := sub.WorldCount()
	if !wc.IsInt64() || wc.Cmp(big.NewInt(int64(c.ev.localLimit))) > 0 {
		return nil, 0, fmt.Errorf("%w: anchor subtree <%s> has %s local worlds", ErrTooComplex, e.Tag(), wc.String())
	}
	type surv struct {
		elems []*pxml.Node
		p     float64
	}
	var kept []surv
	total := 0.0
	worlds.Enumerate(sub, func(w worlds.World) bool {
		found := false
		for _, el := range w.Elements {
			evalFrom(c.ev.q, el, states, func(v string) {
				if v == c.value {
					found = true
				}
			})
		}
		if !found {
			// w.Elements is the certain materialization of e itself.
			if len(w.Elements) == 1 {
				kept = append(kept, surv{elems: pxml.ElementChildren(w.Elements[0]), p: w.P})
			}
			total += w.P
		}
		return true
	})
	if total <= 0 {
		return nil, 0, nil
	}
	if 1-total < 1e-12 {
		return e, 1, nil // event certain here, keep the compact form
	}
	poss := make([]*pxml.Node, len(kept))
	for i, s := range kept {
		poss[i] = pxml.NewPoss(s.p/total, s.elems...)
	}
	var kids []*pxml.Node
	if len(poss) > 0 {
		kids = append(kids, pxml.NewProb(poss...))
	}
	return pxml.NewElem(e.Tag(), e.Text(), kids...), total, nil
}

// ConditionPresent conditions the document on the event "the query yields
// the given value" — a user confirming an answer. The event couples
// independent branches, so the result is built by filtering the explicit
// world set; the document must have at most maxWorlds possible worlds.
// It returns the conditioned tree and the prior probability of the event.
func ConditionPresent(t *pxml.Tree, q *Query, value string, maxWorlds int) (*pxml.Tree, float64, error) {
	if maxWorlds <= 0 {
		maxWorlds = defaultEnumWorldLimit
	}
	wc := t.WorldCount()
	if !wc.IsInt64() || wc.Cmp(big.NewInt(int64(maxWorlds))) > 0 {
		return nil, 0, fmt.Errorf("%w: %s possible worlds (limit %d)", ErrTooComplex, wc.String(), maxWorlds)
	}
	type surv struct {
		elems []*pxml.Node
		p     float64
	}
	var kept []surv
	total := 0.0
	worlds.Enumerate(t, func(w worlds.World) bool {
		if EvalWorld(q, w.Elements)[value] {
			kept = append(kept, surv{elems: w.Elements, p: w.P})
			total += w.P
		}
		return true
	})
	if total <= 0 {
		return nil, 0, ErrContradiction
	}
	poss := make([]*pxml.Node, len(kept))
	for i, s := range kept {
		poss[i] = pxml.NewPoss(s.p/total, s.elems...)
	}
	nt := pxml.MustTree(pxml.NewProb(poss...))
	// Merge worlds that materialized identically.
	nt, err := nt.Normalize()
	if err != nil {
		return nil, 0, err
	}
	return nt, total, nil
}

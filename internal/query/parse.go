package query

import (
	"fmt"
	"unicode"
)

// ParseError reports a query syntax error with its byte position.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("query: position %d: %s", e.Pos, e.Msg)
}

// Compile parses a query of the supported XPath subset:
//
//	query  := ('/' | '//') step (('/' | '//') step)*
//	step   := (NAME | '*' | 'text()') pred*
//	pred   := '[' or ']'
//	or     := and ('or' and)*
//	and    := not ('and' not)*
//	not    := 'not' '(' or ')' | '(' or ')' | cmp
//	cmp    := rpath ('=' literal)?
//	        | 'contains' '(' rpath ',' literal ')'
//	        | 'some' '$'NAME 'in' rpath 'satisfies' vcond
//	vcond  := 'contains' '(' '$'NAME ',' literal ')' | '$'NAME '=' literal
//	rpath  := '.' | ('.')? ('/'|'//') step … | step (('/'|'//') step)*
//
// Comparison predicates have existential semantics over the node set, as
// in the paper's example queries.
func Compile(src string) (*Query, error) {
	p := &parser{lex: newLexer(src), src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustCompile is Compile that panics on error, for statically known
// queries.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// --- lexer ---

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokSlash
	tokDSlash
	tokName   // identifier
	tokVar    // $identifier
	tokStar   // *
	tokDot    // .
	tokLBrack // [
	tokRBrack // ]
	tokLParen // (
	tokRParen // )
	tokComma  // ,
	tokEq     // =
	tokString // quoted literal
	tokNumber // numeric literal (kept as text)
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
	err  *ParseError
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.run()
	return l
}

func (l *lexer) errorf(pos int, format string, args ...any) {
	if l.err == nil {
		l.err = &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
}

func (l *lexer) run() {
	s := l.src
	i := 0
	emit := func(k tokKind, text string, pos int) {
		l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
	}
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/':
			if i+1 < len(s) && s[i+1] == '/' {
				emit(tokDSlash, "//", i)
				i += 2
			} else {
				emit(tokSlash, "/", i)
				i++
			}
		case c == '*':
			emit(tokStar, "*", i)
			i++
		case c == '.':
			emit(tokDot, ".", i)
			i++
		case c == '[':
			emit(tokLBrack, "[", i)
			i++
		case c == ']':
			emit(tokRBrack, "]", i)
			i++
		case c == '(':
			emit(tokLParen, "(", i)
			i++
		case c == ')':
			emit(tokRParen, ")", i)
			i++
		case c == ',':
			emit(tokComma, ",", i)
			i++
		case c == '=':
			emit(tokEq, "=", i)
			i++
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			for j < len(s) && s[j] != quote {
				j++
			}
			if j >= len(s) {
				l.errorf(i, "unterminated string literal")
				return
			}
			emit(tokString, s[i+1:j], i)
			i = j + 1
		case c == '$':
			j := i + 1
			for j < len(s) && isNameByte(s[j]) {
				j++
			}
			if j == i+1 {
				l.errorf(i, "empty variable name after $")
				return
			}
			emit(tokVar, s[i+1:j], i)
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.') {
				j++
			}
			emit(tokNumber, s[i:j], i)
			i = j
		case isNameStartByte(c):
			j := i
			for j < len(s) && isNameByte(s[j]) {
				j++
			}
			emit(tokName, s[i:j], i)
			i = j
		default:
			l.errorf(i, "unexpected character %q", rune(c))
			return
		}
	}
	emit(tokEOF, "", len(s))
}

func isNameStartByte(c byte) bool {
	return c == '_' || c == '@' || unicode.IsLetter(rune(c))
}

func isNameByte(c byte) bool {
	return isNameStartByte(c) || (c >= '0' && c <= '9') || c == '-' || c == ':'
}

// --- parser ---

type parser struct {
	lex *lexer
	src string
	i   int
}

func (p *parser) peek() token {
	if p.i < len(p.lex.toks) {
		return p.lex.toks[p.i]
	}
	return token{kind: tokEOF, pos: len(p.src)}
}

func (p *parser) next() token {
	t := p.peek()
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, &ParseError{Pos: t.pos, Msg: fmt.Sprintf("expected %s, found %q", what, t.text)}
	}
	return t, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if p.lex.err != nil {
		return nil, p.lex.err
	}
	q := &Query{src: p.src}
	first := true
	for {
		t := p.peek()
		var desc bool
		switch t.kind {
		case tokSlash:
			desc = false
		case tokDSlash:
			desc = true
		default:
			if first {
				return nil, &ParseError{Pos: t.pos, Msg: "query must start with / or //"}
			}
			if t.kind != tokEOF {
				return nil, &ParseError{Pos: t.pos, Msg: fmt.Sprintf("unexpected %q after path", t.text)}
			}
			if err := validateSteps(q.Steps); err != nil {
				return nil, err
			}
			return q, nil
		}
		p.next()
		step, err := p.parseStep(desc)
		if err != nil {
			return nil, err
		}
		q.Steps = append(q.Steps, step)
		first = false
	}
}

func validateSteps(steps []Step) error {
	if len(steps) == 0 {
		return &ParseError{Pos: 0, Msg: "empty path"}
	}
	if len(steps) > 62 {
		return &ParseError{Pos: 0, Msg: "too many steps (max 62)"}
	}
	if steps[0].IsText {
		return &ParseError{Pos: 0, Msg: "text() cannot be the first step"}
	}
	for i, s := range steps {
		if s.IsText && i != len(steps)-1 {
			return &ParseError{Pos: 0, Msg: "text() must be the last step"}
		}
		if s.IsText && len(s.Preds) > 0 {
			return &ParseError{Pos: 0, Msg: "text() takes no predicates"}
		}
	}
	return nil
}

func (p *parser) parseStep(desc bool) (Step, error) {
	t := p.next()
	step := Step{Desc: desc}
	switch t.kind {
	case tokStar:
		step.Name = "*"
	case tokName:
		if t.text == "text" && p.peek().kind == tokLParen {
			p.next()
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return step, err
			}
			step.IsText = true
			step.Name = "text()"
			break
		}
		step.Name = t.text
	default:
		return step, &ParseError{Pos: t.pos, Msg: fmt.Sprintf("expected step name, found %q", t.text)}
	}
	for p.peek().kind == tokLBrack {
		p.next()
		pred, err := p.parseOr()
		if err != nil {
			return step, err
		}
		if _, err := p.expect(tokRBrack, "]"); err != nil {
			return step, err
		}
		step.Preds = append(step.Preds, pred)
	}
	return step, nil
}

func (p *parser) parseOr() (Pred, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokName && p.peek().text == "or" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = PredOr{A: left, B: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Pred, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokName && p.peek().text == "and" {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = PredAnd{A: left, B: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Pred, error) {
	t := p.peek()
	if t.kind == tokName && t.text == "not" {
		p.next()
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return PredNot{P: inner}, nil
	}
	if t.kind == tokLParen {
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Pred, error) {
	t := p.peek()
	if t.kind == tokName {
		switch t.text {
		case "contains":
			return p.parseContains()
		case "some":
			return p.parseSome()
		}
	}
	path, err := p.parseRelPath()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokEq {
		p.next()
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return PredExists{Path: path, Cond: CondEq{Lit: lit}}, nil
	}
	return PredExists{Path: path, Cond: CondAny{}}, nil
}

func (p *parser) parseContains() (Pred, error) {
	p.next() // contains
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	path, err := p.parseRelPath()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokComma, ","); err != nil {
		return nil, err
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	return PredExists{Path: path, Cond: CondContains{Lit: lit}}, nil
}

// parseSome handles `some $v in path satisfies cond($v)`, the paper's
// second example query form. The condition must reference the variable.
func (p *parser) parseSome() (Pred, error) {
	p.next() // some
	v, err := p.expect(tokVar, "variable")
	if err != nil {
		return nil, err
	}
	inTok, err := p.expect(tokName, "'in'")
	if err != nil || inTok.text != "in" {
		return nil, &ParseError{Pos: inTok.pos, Msg: "expected 'in'"}
	}
	path, err := p.parseRelPath()
	if err != nil {
		return nil, err
	}
	sat, err := p.expect(tokName, "'satisfies'")
	if err != nil || sat.text != "satisfies" {
		return nil, &ParseError{Pos: sat.pos, Msg: "expected 'satisfies'"}
	}
	cond, err := p.parseVarCond(v.text)
	if err != nil {
		return nil, err
	}
	return PredExists{Path: path, Cond: cond}, nil
}

func (p *parser) parseVarCond(varName string) (ValueCond, error) {
	t := p.next()
	switch {
	case t.kind == tokName && t.text == "contains":
		if _, err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		v, err := p.expect(tokVar, "variable")
		if err != nil {
			return nil, err
		}
		if v.text != varName {
			return nil, &ParseError{Pos: v.pos, Msg: fmt.Sprintf("unknown variable $%s", v.text)}
		}
		if _, err := p.expect(tokComma, ","); err != nil {
			return nil, err
		}
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return CondContains{Lit: lit}, nil
	case t.kind == tokVar:
		if t.text != varName {
			return nil, &ParseError{Pos: t.pos, Msg: fmt.Sprintf("unknown variable $%s", t.text)}
		}
		if _, err := p.expect(tokEq, "="); err != nil {
			return nil, err
		}
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return CondEq{Lit: lit}, nil
	default:
		return nil, &ParseError{Pos: t.pos, Msg: "expected contains($var, …) or $var = …"}
	}
}

func (p *parser) parseLiteral() (string, error) {
	t := p.next()
	switch t.kind {
	case tokString, tokNumber:
		return t.text, nil
	default:
		return "", &ParseError{Pos: t.pos, Msg: fmt.Sprintf("expected literal, found %q", t.text)}
	}
}

// parseRelPath parses a predicate-relative path: `.`, `.//a/b`, `./a`,
// `a/b`, `//a`.
func (p *parser) parseRelPath() (RelPath, error) {
	var rp RelPath
	t := p.peek()
	switch t.kind {
	case tokDot:
		p.next()
		rp.Self = true
		if p.peek().kind != tokSlash && p.peek().kind != tokDSlash {
			return rp, nil // bare "."
		}
	case tokName, tokStar:
		// Leading step without slash, e.g. [genre="Horror"].
		step, err := p.parseStep(false)
		if err != nil {
			return rp, err
		}
		rp.Steps = append(rp.Steps, step)
	case tokSlash, tokDSlash:
		// Treated as relative to the context element.
	default:
		return rp, &ParseError{Pos: t.pos, Msg: fmt.Sprintf("expected path, found %q", t.text)}
	}
	for {
		t := p.peek()
		var desc bool
		switch t.kind {
		case tokSlash:
			desc = false
		case tokDSlash:
			desc = true
		default:
			if len(rp.Steps) == 0 && !rp.Self {
				return rp, &ParseError{Pos: t.pos, Msg: "empty path in predicate"}
			}
			if err := validateRelSteps(rp.Steps); err != nil {
				return rp, err
			}
			return rp, nil
		}
		p.next()
		step, err := p.parseStep(desc)
		if err != nil {
			return rp, err
		}
		rp.Steps = append(rp.Steps, step)
	}
}

func validateRelSteps(steps []Step) error {
	for i, s := range steps {
		if s.IsText && i != len(steps)-1 {
			return &ParseError{Pos: 0, Msg: "text() must be the last step"}
		}
	}
	return nil
}

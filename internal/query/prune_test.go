package query_test

import (
	"reflect"
	"testing"

	"repro/internal/query"
	"repro/internal/queryindex"
)

// TestBloomPruningSoundness drives the text-fingerprint pruning through
// the shapes where a naive implementation would wrongly prune: literals
// with spaces (which can match across concatenated leaves), values
// produced by nested elements under the predicate path's tag, negated
// predicates, and contains() conditions. In every case the planned
// engine must agree with exhaustive enumeration.
func TestBloomPruningSoundness(t *testing.T) {
	doc := `
	<catalog>
	  <movie><title>Die Hard</title><year>1988</year></movie>
	  <movie><title><part>Die</part><part>Hard</part></title><year>1900</year></movie>
	  <movie><title><b>Jaws</b></title><year>1975</year></movie>
	  <movie><title>Alien</title><year>1979</year></movie>
	</catalog>`
	tr := mustTreeFromXML(t, doc)
	idx := queryindex.Build(tr)
	for _, src := range []string{
		`//movie[title="Die Hard"]/year`, // space literal: no pruning allowed
		`//movie[title="Jaws"]/year`,     // value from nested <b>, not <title> text
		`//movie[not(title="Alien")]/year`,
		`//movie[contains(title, "lie")]/year`,
		`//movie[title="Nowhere"]/year`, // genuinely absent: prune to empty
	} {
		q := query.MustCompile(src)
		planned, err := query.EvalIndexed(tr, q, query.Options{Method: query.MethodExact}, idx)
		if err != nil {
			t.Fatalf("%s: planned exact: %v", src, err)
		}
		enum, err := query.EvalEnumerate(tr, q, 0)
		if err != nil {
			t.Fatalf("%s: enumerate: %v", src, err)
		}
		assertAnswersWithin(t, 0, src, "planned-vs-enumerate", planned.Answers, enum, 1e-9)
	}

	// The concatenated "Die Hard" title must actually be found (two part
	// leaves joined with a space), or the test above proves nothing.
	q := query.MustCompile(`//movie[title="Die Hard"]/year`)
	res, err := query.EvalIndexed(tr, q, query.Options{}, idx)
	if err != nil {
		t.Fatal(err)
	}
	years := map[string]bool{}
	for _, a := range res.Answers {
		years[a.Value] = true
	}
	if !reflect.DeepEqual(years, map[string]bool{"1988": true, "1900": true}) {
		t.Fatalf("Die Hard years = %v, want both the plain and the concatenated title", years)
	}
}

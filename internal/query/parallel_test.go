package query_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/query"
	"repro/internal/queryindex"
)

// TestParallelEqualsSequential is the determinism property test of the
// parallel query engine (the PR 2 pattern applied to the read path): over
// the whole document corpus and query pool, exact, sampled and auto
// evaluation must return bit-identical answers — float-equal, same order —
// for every worker count. Run under -race this also proves the fan-out
// shares no unsynchronized mutable state.
func TestParallelEqualsSequential(t *testing.T) {
	workerCounts := []int{2, 3, 8}
	for ti, tree := range propertyTrees(t) {
		idx := queryindex.Build(tree)
		for _, src := range propertyQueries {
			q := query.MustCompile(src)
			for _, method := range []query.Method{query.MethodAuto, query.MethodExact, query.MethodSample} {
				base := query.Options{Method: method, Samples: 600, Seed: query.SeedPtr(7), Workers: 1}
				seq, seqErr := query.EvalIndexed(tree, q, base, idx)
				for _, workers := range workerCounts {
					opts := base
					opts.Workers = workers
					par, parErr := query.EvalIndexed(tree, q, opts, idx)
					if (seqErr == nil) != (parErr == nil) {
						t.Fatalf("tree %d %s method=%s: workers=1 err=%v, workers=%d err=%v",
							ti, src, method, seqErr, workers, parErr)
					}
					if seqErr != nil {
						// Same failure either way (e.g. exact inapplicable).
						if !errors.Is(parErr, query.ErrNotExact) {
							t.Fatalf("tree %d %s method=%s workers=%d: unexpected error %v",
								ti, src, method, workers, parErr)
						}
						continue
					}
					if !reflect.DeepEqual(seq.Answers, par.Answers) {
						t.Fatalf("tree %d %s method=%s: workers=%d answers differ\n  seq: %v\n  par: %v",
							ti, src, method, workers, seq.Answers, par.Answers)
					}
					if seq.Method != par.Method {
						t.Fatalf("tree %d %s method=%s: workers=%d ran %s, sequential ran %s",
							ti, src, method, workers, par.Method, seq.Method)
					}
				}
			}
		}
	}
}

// TestSampleSeedReproducibleAcrossWorkers pins the seed-splitting design:
// a fixed (n, seed) pair draws the same chunk substreams no matter how
// many workers run them, so sampled answers are reproducible bit for bit.
// Uses a sample count far above the chunk size so many chunks exist.
func TestSampleSeedReproducibleAcrossWorkers(t *testing.T) {
	tree := propertyTrees(t)[0]
	idx := queryindex.Build(tree)
	q := query.MustCompile(`//movie/title`)
	var want *query.Result
	for _, workers := range []int{1, 2, 3, 8} {
		res, err := query.EvalIndexed(tree, q, query.Options{
			Method: query.MethodSample, Samples: 5000, Seed: query.SeedPtr(99), Workers: workers,
		}, idx)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			w := res
			want = &w
			continue
		}
		if !reflect.DeepEqual(want.Answers, res.Answers) {
			t.Fatalf("workers=%d: sampled answers differ from workers=1", workers)
		}
	}
}

// TestQueryContextCanceled: a context canceled before evaluation aborts
// immediately with ctx.Err() — the first budget step always checks.
func TestQueryContextCanceled(t *testing.T) {
	tree := propertyTrees(t)[0]
	idx := queryindex.Build(tree)
	q := query.MustCompile(`//movie/title`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := query.EvalIndexedCtx(ctx, tree, q, query.Options{}, idx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestQueryVisitBudget: a tiny node-visit budget aborts with
// ErrBudgetExhausted, and the result still carries the plan with
// BudgetExhausted set so explain can show what was attempted.
func TestQueryVisitBudget(t *testing.T) {
	tree := propertyTrees(t)[0]
	idx := queryindex.Build(tree)
	q := query.MustCompile(`//movie/title`)
	res, err := query.EvalIndexedCtx(context.Background(), tree, q, query.Options{MaxNodeVisits: 3}, idx)
	if !errors.Is(err, query.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if res.Plan == nil || !res.Plan.BudgetExhausted {
		t.Fatalf("plan = %+v, want BudgetExhausted", res.Plan)
	}
}

// TestQueryTimeBudget: an already-expired wall-clock budget aborts on the
// first metered step.
func TestQueryTimeBudget(t *testing.T) {
	tree := propertyTrees(t)[0]
	idx := queryindex.Build(tree)
	q := query.MustCompile(`//movie/title`)
	_, err := query.EvalIndexedCtx(context.Background(), tree, q, query.Options{TimeBudget: 1}, idx)
	if !errors.Is(err, query.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
}

// TestQueryWorkersValidation: negative worker counts are an options error,
// like every other negative knob.
func TestQueryWorkersValidation(t *testing.T) {
	for _, opts := range []query.Options{
		{Workers: -1},
		{TimeBudget: -1},
		{MaxNodeVisits: -1},
	} {
		if err := opts.Validate(); !errors.Is(err, query.ErrBadOptions) {
			t.Fatalf("Validate(%+v) = %v, want ErrBadOptions", opts, err)
		}
	}
}

package query

import (
	"strings"

	"repro/internal/pxml"
)

// This file evaluates queries over certain documents (single possible
// world). It is the shared core: the Enumerate and Sample evaluators apply
// it to whole materialized worlds, and the Exact evaluator applies it to
// locally enumerated anchor subtrees, starting mid-path via state sets.
//
// A state set is a bitmask over step indices: bit i set means "steps[i] is
// still looking for a match in the current context". Queries are limited
// to 63 steps, far beyond anything sensible.

// stateSet is a bitmask of pending step indices.
type stateSet uint64

func (s stateSet) has(i int) bool     { return s&(1<<uint(i)) != 0 }
func (s stateSet) add(i int) stateSet { return s | (1 << uint(i)) }

// StringValue returns the string value of a certain element: its own text
// followed by the text of its certain descendants in document order,
// space-separated.
func StringValue(elem *pxml.Node) string {
	if elem.IsLeaf() {
		return elem.Text()
	}
	var b strings.Builder
	var rec func(e *pxml.Node)
	rec = func(e *pxml.Node) {
		if e.Text() != "" {
			if b.Len() > 0 {
				b.WriteString(" ")
			}
			b.WriteString(e.Text())
		}
		for _, c := range pxml.ElementChildren(e) {
			rec(c)
		}
	}
	rec(elem)
	return b.String()
}

func stepMatches(s Step, elem *pxml.Node) bool {
	if s.IsText {
		return false
	}
	return s.Name == "*" || s.Name == elem.Tag()
}

// predsHold evaluates all predicates of a step against a certain context
// element.
func predsHold(s Step, elem *pxml.Node) bool {
	for _, p := range s.Preds {
		if !evalPred(p, elem) {
			return false
		}
	}
	return true
}

func evalPred(p Pred, ctx *pxml.Node) bool {
	switch p := p.(type) {
	case PredExists:
		found := false
		walkRelPathValues(ctx, p.Path, func(v string) bool {
			if p.Cond.Match(v) {
				found = true
				return false
			}
			return true
		})
		return found
	case PredAnd:
		return evalPred(p.A, ctx) && evalPred(p.B, ctx)
	case PredOr:
		return evalPred(p.A, ctx) || evalPred(p.B, ctx)
	case PredNot:
		return !evalPred(p.P, ctx)
	default:
		return false
	}
}

// walkRelPathValues visits the string value of every node reached from ctx
// by the relative path (own text for text() steps, string value
// otherwise). The visit function returns false to stop early.
func walkRelPathValues(ctx *pxml.Node, rp RelPath, visit func(string) bool) {
	if len(rp.Steps) == 0 {
		if rp.Self {
			visit(StringValue(ctx))
		}
		return
	}
	if rp.Steps[0].IsText {
		// `./text()` or `text()`: the context's own text.
		if ctx.Text() != "" {
			visit(ctx.Text())
		}
		return
	}
	last := len(rp.Steps) - 1
	stop := false
	var rec func(e *pxml.Node, states stateSet)
	rec = func(e *pxml.Node, states stateSet) {
		if stop || states == 0 {
			return
		}
		var next stateSet
		for i := 0; i <= last; i++ {
			if !states.has(i) {
				continue
			}
			step := rp.Steps[i]
			if step.Desc {
				next = next.add(i)
			}
			if !stepMatches(step, e) || !predsHold(step, e) {
				continue
			}
			switch {
			case i == last:
				if !visit(StringValue(e)) {
					stop = true
					return
				}
			case rp.Steps[i+1].IsText:
				if e.Text() != "" && !visit(e.Text()) {
					stop = true
					return
				}
			default:
				next = next.add(i + 1)
			}
		}
		for _, c := range pxml.ElementChildren(e) {
			rec(c, next)
			if stop {
				return
			}
		}
	}
	// The first step applies to the children of the context (and deeper,
	// when its axis is descendant — state propagation handles that).
	for _, c := range pxml.ElementChildren(ctx) {
		rec(c, stateSet(1))
		if stop {
			return
		}
	}
}

// evalFrom runs the query NFA over a certain element with an initial state
// set, emitting every result value. Used both for whole-world evaluation
// (starting at document roots with state 0) and for anchor-subtree
// evaluation in the exact evaluator (starting mid-path).
func evalFrom(q *Query, e *pxml.Node, states stateSet, emit func(string)) {
	if states == 0 {
		return
	}
	last := len(q.Steps) - 1
	var next stateSet
	for i := 0; i <= last; i++ {
		if !states.has(i) {
			continue
		}
		step := q.Steps[i]
		if step.Desc {
			next = next.add(i) // keep searching deeper
		}
		if !stepMatches(step, e) || !predsHold(step, e) {
			continue
		}
		switch {
		case i == last:
			emit(StringValue(e))
		case q.Steps[i+1].IsText:
			if e.Text() != "" {
				emit(e.Text())
			}
		default:
			next = next.add(i + 1)
		}
	}
	if next == 0 {
		return
	}
	for _, c := range pxml.ElementChildren(e) {
		evalFrom(q, c, next, emit)
	}
}

// EvalWorld evaluates the query in one certain world and returns the set
// of distinct answer values.
func EvalWorld(q *Query, rootElems []*pxml.Node) map[string]bool {
	out := make(map[string]bool)
	for _, r := range rootElems {
		evalFrom(q, r, stateSet(1), func(v string) { out[v] = true })
	}
	return out
}

package strsim_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/strsim"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Mission:  Impossible II", "mission impossible ii"},
		{"  Die Hard!!! ", "die hard"},
		{"", ""},
		{"---", ""},
		{"Jaws 2", "jaws 2"},
		{"L'été", "l été"},
	}
	for _, tc := range cases {
		if got := strsim.Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTokens(t *testing.T) {
	got := strsim.Tokens("Die Hard: With a Vengeance")
	want := []string{"die", "hard", "with", "a", "vengeance"}
	if len(got) != len(want) {
		t.Fatalf("Tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokens = %v, want %v", got, want)
		}
	}
	if strsim.Tokens("!!!") != nil {
		t.Fatalf("punctuation-only should have no tokens")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"jaws", "jaws", 0},
		{"jaws", "jawz", 1},
		{"flaw", "lawn", 2},
		{"über", "uber", 1}, // rune-based, not byte-based
	}
	for _, tc := range cases {
		if got := strsim.Levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	alphabet := []rune("abcx")
	randStr := func(rng *rand.Rand) string {
		n := rng.Intn(8)
		out := make([]rune, n)
		for i := range out {
			out[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(out)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randStr(rng), randStr(rng), randStr(rng)
		dab := strsim.Levenshtein(a, b)
		dba := strsim.Levenshtein(b, a)
		if dab != dba { // symmetry
			return false
		}
		if (dab == 0) != (a == b) { // identity
			return false
		}
		// triangle inequality
		dac := strsim.Levenshtein(a, c)
		dcb := strsim.Levenshtein(c, b)
		return dab <= dac+dcb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinSim(t *testing.T) {
	if got := strsim.LevenshteinSim("", ""); got != 1 {
		t.Fatalf("empty sim = %v", got)
	}
	if got := strsim.LevenshteinSim("jaws", "jaws"); got != 1 {
		t.Fatalf("equal sim = %v", got)
	}
	if got := strsim.LevenshteinSim("abcd", "wxyz"); got != 0 {
		t.Fatalf("disjoint sim = %v", got)
	}
	if got := strsim.LevenshteinSim("jaws", "jawz"); got != 0.75 {
		t.Fatalf("one-edit sim = %v", got)
	}
}

func TestJaroWinkler(t *testing.T) {
	if got := strsim.Jaro("", ""); got != 1 {
		t.Fatalf("Jaro empty = %v", got)
	}
	if got := strsim.Jaro("a", ""); got != 0 {
		t.Fatalf("Jaro vs empty = %v", got)
	}
	if got := strsim.Jaro("martha", "marhta"); got < 0.94 || got > 0.95 {
		t.Fatalf("Jaro(martha,marhta) = %v, want ≈0.944", got)
	}
	jw := strsim.JaroWinkler("martha", "marhta")
	if jw < 0.96 || jw > 0.97 {
		t.Fatalf("JaroWinkler(martha,marhta) = %v, want ≈0.961", jw)
	}
	if strsim.JaroWinkler("john", "john") != 1 {
		t.Fatalf("identical JW != 1")
	}
	if got := strsim.Jaro("ab", "cd"); got != 0 {
		t.Fatalf("no matches should be 0, got %v", got)
	}
}

func TestTokenJaccard(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"a", "", 0},
		{"die hard", "Die Hard!", 1},
		{"mission impossible", "impossible mission", 1},
		{"die hard", "die easy", 1.0 / 3},
		{"jaws", "die hard", 0},
	}
	for _, tc := range cases {
		if got := strsim.TokenJaccard(tc.a, tc.b); !close(got, tc.want) {
			t.Errorf("TokenJaccard(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func close(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }

func TestTitleSim(t *testing.T) {
	// Word-order variant (the paper's 'Impossible Mission' confusion).
	if got := strsim.TitleSim("Mission: Impossible", "Impossible Mission"); got != 1 {
		t.Fatalf("order variant = %v, want 1", got)
	}
	// Typo variant.
	if got := strsim.TitleSim("Jaws", "Jawz"); got < 0.7 {
		t.Fatalf("typo variant = %v, want high", got)
	}
	// Sequels are similar but not equal.
	seq := strsim.TitleSim("Mission: Impossible", "Mission: Impossible II")
	if seq < 0.6 || seq >= 1 {
		t.Fatalf("sequel sim = %v, want in [0.6,1)", seq)
	}
	// Unrelated titles score low.
	if got := strsim.TitleSim("Jaws", "Die Hard"); got > 0.4 {
		t.Fatalf("unrelated sim = %v, want low", got)
	}
	if strsim.TitleSim("Jaws", "Jaws") != 1 {
		t.Fatalf("identical titles != 1")
	}
}

func TestNameConventions(t *testing.T) {
	if !strsim.SameName("Woo, John", "John Woo") {
		t.Fatalf("comma convention should match")
	}
	if !strsim.SameName("JOHN  McTIERNAN", "McTiernan, John") {
		t.Fatalf("case and order should not matter")
	}
	if strsim.SameName("John Woo", "John Wu") {
		t.Fatalf("different surnames should not match")
	}
	if strsim.SameName("", "") {
		t.Fatalf("empty names should not match")
	}
	if strsim.NameKey("Woo, John") != "john woo" {
		t.Fatalf("NameKey = %q", strsim.NameKey("Woo, John"))
	}
}

func TestNameSim(t *testing.T) {
	if strsim.NameSim("Woo, John", "John Woo") != 1 {
		t.Fatalf("convention-equivalent names should score 1")
	}
	typo := strsim.NameSim("John McTiernan", "John McTiernen")
	if typo < 0.9 {
		t.Fatalf("typo name sim = %v, want > 0.9", typo)
	}
	diff := strsim.NameSim("John Woo", "Steven Spielberg")
	if diff > 0.6 {
		t.Fatalf("different names sim = %v, want low", diff)
	}
}

func TestSimilaritiesInRange(t *testing.T) {
	words := []string{"", "a", "jaws", "jaws 2", "Die Hard", "mission impossible",
		"Impossible Mission III", "John Woo", "Woo, John", "漢字テスト"}
	for _, a := range words {
		for _, b := range words {
			for name, f := range map[string]func(string, string) float64{
				"LevenshteinSim": strsim.LevenshteinSim,
				"Jaro":           strsim.Jaro,
				"JaroWinkler":    strsim.JaroWinkler,
				"TokenJaccard":   strsim.TokenJaccard,
				"TitleSim":       strsim.TitleSim,
				"NameSim":        strsim.NameSim,
			} {
				v := f(a, b)
				if v < 0 || v > 1 {
					t.Fatalf("%s(%q,%q) = %v out of [0,1]", name, a, b, v)
				}
				if w := f(b, a); !close(v, w) {
					t.Fatalf("%s not symmetric on (%q,%q): %v vs %v", name, a, b, v, w)
				}
			}
		}
	}
}

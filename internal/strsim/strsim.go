// Package strsim provides the string-similarity toolkit behind IMPrECISE's
// domain rules: sources "use different conventions for, e.g., naming
// directors, so these never match exactly" (paper §V). The Oracle's title
// and director rules are built on these measures.
package strsim

import (
	"sort"
	"strings"
	"unicode"
)

// Normalize lower-cases the string, maps punctuation to spaces and
// collapses whitespace runs: "Mission:  Impossible II" → "mission
// impossible ii".
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := true
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
			space = false
			continue
		}
		if !space {
			b.WriteByte(' ')
			space = true
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// Tokens splits a string into normalized word tokens.
func Tokens(s string) []string {
	n := Normalize(s)
	if n == "" {
		return nil
	}
	return strings.Split(n, " ")
}

// Levenshtein returns the edit distance (insert/delete/substitute, unit
// cost) between two strings, computed over runes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSim maps edit distance to a similarity in [0,1]:
// 1 − dist/max(len). Equal strings score 1; disjoint strings approach 0.
func LevenshteinSim(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	max := la
	if lb > max {
		max = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(max)
}

// Jaro returns the Jaro similarity in [0,1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a common prefix
// (up to 4 runes), the usual variant for name matching.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// TokenJaccard returns the Jaccard similarity of the normalized token sets
// of the two strings.
func TokenJaccard(a, b string) float64 {
	ta, tb := Tokens(a), Tokens(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	set := make(map[string]uint8, len(ta)+len(tb))
	for _, t := range ta {
		set[t] |= 1
	}
	for _, t := range tb {
		set[t] |= 2
	}
	inter, union := 0, 0
	for _, m := range set {
		union++
		if m == 3 {
			inter++
		}
	}
	return float64(inter) / float64(union)
}

// TitleSim is the combined title similarity used by the Oracle's title
// rule: the maximum of normalized-string edit similarity and token Jaccard,
// so both misspellings ("Jaws" / "Jawz") and word-order variations
// ("Mission Impossible" / "Impossible Mission") score high.
func TitleSim(a, b string) float64 {
	na, nb := Normalize(a), Normalize(b)
	if na == nb {
		return 1
	}
	lev := LevenshteinSim(na, nb)
	jac := TokenJaccard(a, b)
	if jac > lev {
		return jac
	}
	return lev
}

// NameKey canonicalizes a person name so that convention variants collide:
// "Woo, John", "John Woo" and "woo john" all map to "john woo". The key is
// the sorted normalized token list.
func NameKey(s string) string {
	toks := Tokens(s)
	sort.Strings(toks)
	return strings.Join(toks, " ")
}

// SameName reports whether two person names are equivalent up to
// convention (token order, punctuation, case).
func SameName(a, b string) bool {
	ka, kb := NameKey(a), NameKey(b)
	return ka != "" && ka == kb
}

// NameSim scores person-name similarity: 1 for convention-equivalent
// names, otherwise Jaro-Winkler over canonicalized forms (so typos still
// score high but distinct names don't).
func NameSim(a, b string) float64 {
	if SameName(a, b) {
		return 1
	}
	return JaroWinkler(NameKey(a), NameKey(b))
}

package oracle

import (
	"fmt"
	"strings"

	"repro/internal/pxml"
	"repro/internal/strsim"
)

// funcRule adapts a function to the Rule interface.
type funcRule struct {
	name string
	fn   func(a, b *pxml.Node) Verdict
}

func (r funcRule) Name() string                  { return r.name }
func (r funcRule) Apply(a, b *pxml.Node) Verdict { return r.fn(a, b) }
func abstain() Verdict                           { return Verdict{Decision: Unknown} }
func decide(d Decision, name string) Verdict {
	p := 0.0
	if d == MustMatch {
		p = 1
	}
	return Verdict{Decision: d, P: p, Rule: name}
}

// NewRule builds a custom rule from a function.
func NewRule(name string, fn func(a, b *pxml.Node) Verdict) Rule {
	return funcRule{name: name, fn: fn}
}

// DeepEqual is the paper's generic rule: two deep-equal elements refer to
// the same real-world object. It never decides cannot-match.
func DeepEqual() Rule {
	return funcRule{name: "deep-equal", fn: func(a, b *pxml.Node) Verdict {
		if pxml.DeepEqualElems(a, b) {
			return decide(MustMatch, "deep-equal")
		}
		return abstain()
	}}
}

// ExactLeaf implements "no typos occur in <tag>" rules — the paper's genre
// rule. For leaf elements with the given tag it decides must-match on equal
// text and cannot-match on different text, eliminating the "same value with
// a typo" possibility. It abstains for other tags and for non-leaves.
func ExactLeaf(tag string) Rule {
	name := fmt.Sprintf("no-typos(%s)", tag)
	return funcRule{name: name, fn: func(a, b *pxml.Node) Verdict {
		if a.Tag() != tag || b.Tag() != tag || !isLeafish(a) || !isLeafish(b) {
			return abstain()
		}
		if a.Text() == b.Text() {
			return decide(MustMatch, name)
		}
		return decide(CannotMatch, name)
	}}
}

// isLeafish reports whether an element carries only a text value (no
// element children under any alternative).
func isLeafish(e *pxml.Node) bool {
	if e.IsLeaf() {
		return true
	}
	for _, prob := range e.Children() {
		for _, poss := range prob.Children() {
			if len(poss.Children()) > 0 {
				return false
			}
		}
	}
	return true
}

// KeyField implements "elements with different <field> cannot match" rules
// — the paper's year rule ("movies of different years cannot match"). It
// compares the certain text of the field child and decides cannot-match on
// inequality; it abstains when either side's field is absent or uncertain,
// and on equality (same year does not imply same movie).
func KeyField(elemTag, fieldTag string) Rule {
	name := fmt.Sprintf("key-field(%s/%s)", elemTag, fieldTag)
	return funcRule{name: name, fn: func(a, b *pxml.Node) Verdict {
		if a.Tag() != elemTag || b.Tag() != elemTag {
			return abstain()
		}
		va := pxml.CertainText(a, fieldTag)
		vb := pxml.CertainText(b, fieldTag)
		if va == "" || vb == "" {
			return abstain()
		}
		if va != vb {
			return decide(CannotMatch, name)
		}
		return abstain()
	}}
}

// Similarity implements "elements cannot match unless <field> is
// sufficiently similar" rules — the paper's title rule. Pairs whose field
// similarity falls below the threshold are cannot-match; otherwise the rule
// abstains. Absent or uncertain fields abstain.
func Similarity(elemTag, fieldTag string, sim func(a, b string) float64, threshold float64) Rule {
	name := fmt.Sprintf("similarity(%s/%s<%.2g)", elemTag, fieldTag, threshold)
	return funcRule{name: name, fn: func(a, b *pxml.Node) Verdict {
		if a.Tag() != elemTag || b.Tag() != elemTag {
			return abstain()
		}
		va := pxml.CertainText(a, fieldTag)
		vb := pxml.CertainText(b, fieldTag)
		if va == "" || vb == "" {
			return abstain()
		}
		if sim(va, vb) < threshold {
			return decide(CannotMatch, name)
		}
		return abstain()
	}}
}

// NameEquivalence decides leaf name elements (e.g. directors) by naming
// convention: convention-equivalent names ("Woo, John" vs "John Woo") are
// must-match, clearly different names are cannot-match, and near-miss
// names (possible typos) remain undecided. This captures the paper's
// observation that sources "use different conventions for naming
// directors, so these never match exactly".
func NameEquivalence(tag string, typoThreshold float64) Rule {
	name := fmt.Sprintf("name-equivalence(%s)", tag)
	return funcRule{name: name, fn: func(a, b *pxml.Node) Verdict {
		if a.Tag() != tag || b.Tag() != tag || !isLeafish(a) || !isLeafish(b) {
			return abstain()
		}
		if strsim.SameName(a.Text(), b.Text()) {
			return decide(MustMatch, name)
		}
		if strsim.NameSim(a.Text(), b.Text()) < typoThreshold {
			return decide(CannotMatch, name)
		}
		return abstain()
	}}
}

// The movie-domain rule set of the paper's §V, with the thresholds used
// throughout the reproduction.

// GenreRule is the paper's "no typos occur in genres".
func GenreRule() Rule { return ExactLeaf("genre") }

// TitleThreshold is the similarity below which two movies cannot be the
// same (paper: "not sufficiently similar").
const TitleThreshold = 0.55

// TitleRule is the paper's "two movies cannot match if their titles are
// not sufficiently similar".
func TitleRule() Rule {
	return Similarity("movie", "title", strsim.TitleSim, TitleThreshold)
}

// YearRule is the paper's "movies of different years cannot match".
func YearRule() Rule { return KeyField("movie", "year") }

// DirectorRule decides director leaves by naming convention.
func DirectorRule() Rule { return NameEquivalence("director", 0.90) }

// NameReconciler canonicalizes convention-equivalent person names to the
// "First Last" form, so matched directors do not leave a spurious value
// choice behind. Non-equivalent names are left unreconciled.
func NameReconciler() Reconciler {
	return func(a, b string) (string, bool) {
		if !strsim.SameName(a, b) {
			return "", false
		}
		// Prefer the form without the "Last, First" comma.
		if !strings.Contains(a, ",") {
			return a, true
		}
		if !strings.Contains(b, ",") {
			return b, true
		}
		return a, true
	}
}

// TitleEstimator estimates the match probability of two undecided movies
// from their title similarity, so that rankings reflect likelihood (used
// for the paper's §VI query experiments). Clamping in the Oracle keeps the
// estimate away from absolute decisions.
func TitleEstimator() Estimator {
	return func(a, b *pxml.Node) float64 {
		ta := pxml.CertainText(a, "title")
		tb := pxml.CertainText(b, "title")
		if ta == "" || tb == "" {
			return 0.5
		}
		s := strsim.TitleSim(ta, tb)
		// Map similarity in [threshold, 1] onto a match probability in
		// roughly [0.2, 0.8]: similar titles are likelier merges but never
		// certain.
		return 0.2 + 0.6*(s-TitleThreshold)/(1-TitleThreshold)
	}
}

// RuleSet is a named bundle of rules matching the rows of the paper's
// Table I.
type RuleSet int

const (
	// SetNone is only the generic deep-equal rule (the table's "none").
	SetNone RuleSet = iota
	// SetGenre adds the genre rule.
	SetGenre
	// SetTitle adds the movie title rule.
	SetTitle
	// SetGenreTitle adds genre and title rules.
	SetGenreTitle
	// SetGenreTitleYear adds genre, title and year rules.
	SetGenreTitleYear
	// SetFull adds all domain rules including director name equivalence.
	SetFull
)

// String names the rule set as in the paper's Table I.
func (s RuleSet) String() string {
	switch s {
	case SetNone:
		return "none"
	case SetGenre:
		return "Genre rule"
	case SetTitle:
		return "Movie title rule"
	case SetGenreTitle:
		return "Genre and movie title rule"
	case SetGenreTitleYear:
		return "Genre, movie title and year rule"
	case SetFull:
		return "All rules (incl. director)"
	default:
		return fmt.Sprintf("RuleSet(%d)", int(s))
	}
}

// Rules returns the domain rules of the set.
func (s RuleSet) Rules() []Rule {
	switch s {
	case SetGenre:
		return []Rule{GenreRule()}
	case SetTitle:
		return []Rule{TitleRule()}
	case SetGenreTitle:
		return []Rule{GenreRule(), TitleRule()}
	case SetGenreTitleYear:
		return []Rule{GenreRule(), TitleRule(), YearRule()}
	case SetFull:
		return []Rule{GenreRule(), TitleRule(), YearRule(), DirectorRule()}
	default:
		return nil
	}
}

// MovieOracle builds the Oracle used in the movie experiments: the given
// rule set plus the title-similarity estimator for undecided movie pairs.
// The full rule set also reconciles director-name conventions.
func MovieOracle(s RuleSet, opts ...Option) *Oracle {
	all := []Option{WithEstimator("movie", TitleEstimator())}
	if s == SetFull {
		all = append(all, WithReconciler("director", NameReconciler()))
	}
	all = append(all, opts...)
	return New(s.Rules(), all...)
}

package oracle_test

import (
	"strings"
	"testing"

	"repro/internal/oracle"
	"repro/internal/pxml"
	"repro/internal/xmlcodec"
)

func elem(t *testing.T, src string) *pxml.Node {
	t.Helper()
	tr, err := xmlcodec.DecodeString(src)
	if err != nil {
		t.Fatalf("decode %q: %v", src, err)
	}
	return tr.RootElements()[0]
}

func TestDeepEqualRuleIsAlwaysPresent(t *testing.T) {
	o := oracle.New(nil)
	a := elem(t, `<movie><title>Jaws</title><year>1975</year></movie>`)
	b := elem(t, `<movie><title>Jaws</title><year>1975</year></movie>`)
	v, err := o.Decide(a, b)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if v.Decision != oracle.MustMatch || v.P != 1 {
		t.Fatalf("deep-equal pair verdict = %+v", v)
	}
	if v.Rule != "deep-equal" {
		t.Fatalf("rule = %q", v.Rule)
	}
}

func TestUnknownUsesPrior(t *testing.T) {
	o := oracle.New(nil, oracle.WithPrior(0.3))
	a := elem(t, `<movie><title>Jaws</title></movie>`)
	b := elem(t, `<movie><title>Jaws 2</title></movie>`)
	v, err := o.Decide(a, b)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if v.Decision != oracle.Unknown || v.P != 0.3 {
		t.Fatalf("verdict = %+v, want unknown at prior 0.3", v)
	}
	if o.Calls() != 1 || o.Undecided() != 1 {
		t.Fatalf("stats calls=%d undecided=%d", o.Calls(), o.Undecided())
	}
	o.ResetStats()
	if o.Calls() != 0 || o.Undecided() != 0 {
		t.Fatalf("stats not reset")
	}
}

func TestWithPriorPanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("WithPrior(%v) should panic", p)
				}
			}()
			oracle.WithPrior(p)
		}()
	}
}

func TestEstimatorClamped(t *testing.T) {
	o := oracle.New(nil, oracle.WithEstimator("movie", func(a, b *pxml.Node) float64 { return 2.0 }))
	a := elem(t, `<movie><title>A</title></movie>`)
	b := elem(t, `<movie><title>B</title></movie>`)
	v, err := o.Decide(a, b)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if v.P != 1-oracle.ProbFloor {
		t.Fatalf("estimate not clamped: %v", v.P)
	}
	o2 := oracle.New(nil, oracle.WithEstimator("movie", func(a, b *pxml.Node) float64 { return -3 }))
	v, _ = o2.Decide(a, b)
	if v.P != oracle.ProbFloor {
		t.Fatalf("low estimate not clamped: %v", v.P)
	}
}

func TestGenreRule(t *testing.T) {
	o := oracle.New([]oracle.Rule{oracle.GenreRule()})
	horror1 := elem(t, `<genre>Horror</genre>`)
	horror2 := elem(t, `<genre>Horror</genre>`)
	thriller := elem(t, `<genre>Thriller</genre>`)
	if v, _ := o.Decide(horror1, horror2); v.Decision != oracle.MustMatch {
		t.Fatalf("equal genres: %+v", v)
	}
	if v, _ := o.Decide(horror1, thriller); v.Decision != oracle.CannotMatch {
		t.Fatalf("different genres: %+v", v)
	}
	// Non-genre elements are not decided by the genre rule.
	if v, _ := o.Decide(elem(t, `<title>A</title>`), elem(t, `<title>B</title>`)); v.Decision != oracle.Unknown {
		t.Fatalf("genre rule leaked to titles: %+v", v)
	}
}

func TestTitleRule(t *testing.T) {
	o := oracle.New([]oracle.Rule{oracle.TitleRule()})
	jaws := elem(t, `<movie><title>Jaws</title></movie>`)
	jaws2 := elem(t, `<movie><title>Jaws 2</title></movie>`)
	dieHard := elem(t, `<movie><title>Die Hard</title></movie>`)
	if v, _ := o.Decide(jaws, dieHard); v.Decision != oracle.CannotMatch {
		t.Fatalf("dissimilar titles: %+v", v)
	}
	if v, _ := o.Decide(jaws, jaws2); v.Decision != oracle.Unknown {
		t.Fatalf("sequel titles should stay undecided: %+v", v)
	}
	// Missing title abstains.
	noTitle := elem(t, `<movie><year>1975</year></movie>`)
	if v, _ := o.Decide(jaws, noTitle); v.Decision != oracle.Unknown {
		t.Fatalf("missing title should abstain: %+v", v)
	}
}

func TestYearRule(t *testing.T) {
	o := oracle.New([]oracle.Rule{oracle.YearRule()})
	m75 := elem(t, `<movie><title>Jaws</title><year>1975</year></movie>`)
	m78 := elem(t, `<movie><title>Jaws</title><year>1978</year></movie>`)
	m75b := elem(t, `<movie><title>Jaws reloaded</title><year>1975</year></movie>`)
	if v, _ := o.Decide(m75, m78); v.Decision != oracle.CannotMatch {
		t.Fatalf("different years: %+v", v)
	}
	if v, _ := o.Decide(m75, m75b); v.Decision != oracle.Unknown {
		t.Fatalf("same year must not imply same movie: %+v", v)
	}
}

func TestDirectorRule(t *testing.T) {
	o := oracle.New([]oracle.Rule{oracle.DirectorRule()})
	a := elem(t, `<director>Woo, John</director>`)
	b := elem(t, `<director>John Woo</director>`)
	c := elem(t, `<director>Steven Spielberg</director>`)
	typo := elem(t, `<director>John Woa</director>`)
	if v, _ := o.Decide(a, b); v.Decision != oracle.MustMatch {
		t.Fatalf("convention-equivalent directors: %+v", v)
	}
	if v, _ := o.Decide(a, c); v.Decision != oracle.CannotMatch {
		t.Fatalf("different directors: %+v", v)
	}
	if v, _ := o.Decide(b, typo); v.Decision != oracle.Unknown {
		t.Fatalf("near-typo directors should stay undecided: %+v", v)
	}
}

func TestConflictDefaultResolvesToCannot(t *testing.T) {
	always := oracle.NewRule("always-must", func(a, b *pxml.Node) oracle.Verdict {
		return oracle.Verdict{Decision: oracle.MustMatch, P: 1, Rule: "always-must"}
	})
	never := oracle.NewRule("always-cannot", func(a, b *pxml.Node) oracle.Verdict {
		return oracle.Verdict{Decision: oracle.CannotMatch, Rule: "always-cannot"}
	})
	o := oracle.New([]oracle.Rule{always, never})
	v, err := o.Decide(elem(t, `<x>1</x>`), elem(t, `<x>2</x>`))
	if err != nil {
		t.Fatalf("non-strict conflict should not error: %v", err)
	}
	if v.Decision != oracle.CannotMatch {
		t.Fatalf("conflict resolution = %+v, want cannot-match", v)
	}
	if !strings.Contains(v.Rule, "overrides") {
		t.Fatalf("conflict rule label = %q", v.Rule)
	}
}

func TestConflictStrictErrors(t *testing.T) {
	always := oracle.NewRule("always-must", func(a, b *pxml.Node) oracle.Verdict {
		return oracle.Verdict{Decision: oracle.MustMatch, P: 1}
	})
	never := oracle.NewRule("always-cannot", func(a, b *pxml.Node) oracle.Verdict {
		return oracle.Verdict{Decision: oracle.CannotMatch}
	})
	o := oracle.New([]oracle.Rule{always, never}, oracle.Strict())
	_, err := o.Decide(elem(t, `<x>1</x>`), elem(t, `<x>2</x>`))
	if err == nil {
		t.Fatalf("strict conflict should error")
	}
	ce, ok := err.(*oracle.ConflictError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ce.MustRule != "always-must" || ce.CannotRule != "always-cannot" {
		t.Fatalf("conflict = %+v", ce)
	}
}

func TestExactLeafIgnoresNonLeaves(t *testing.T) {
	o := oracle.New([]oracle.Rule{oracle.ExactLeaf("genre")})
	a := elem(t, `<genre><sub>Horror</sub></genre>`)
	b := elem(t, `<genre><sub>Thriller</sub></genre>`)
	if v, _ := o.Decide(a, b); v.Decision != oracle.Unknown {
		t.Fatalf("non-leaf genres should abstain: %+v", v)
	}
}

func TestRuleSetContents(t *testing.T) {
	cases := []struct {
		set  oracle.RuleSet
		n    int
		name string
	}{
		{oracle.SetNone, 0, "none"},
		{oracle.SetGenre, 1, "Genre rule"},
		{oracle.SetTitle, 1, "Movie title rule"},
		{oracle.SetGenreTitle, 2, "Genre and movie title rule"},
		{oracle.SetGenreTitleYear, 3, "Genre, movie title and year rule"},
		{oracle.SetFull, 4, "All rules (incl. director)"},
	}
	for _, tc := range cases {
		if got := len(tc.set.Rules()); got != tc.n {
			t.Errorf("%v has %d rules, want %d", tc.set, got, tc.n)
		}
		if tc.set.String() != tc.name {
			t.Errorf("String() = %q, want %q", tc.set.String(), tc.name)
		}
	}
	// MovieOracle includes deep-equal plus the set's rules.
	o := oracle.MovieOracle(oracle.SetGenreTitleYear)
	if got := len(o.Rules()); got != 4 {
		t.Fatalf("MovieOracle rules = %v", o.Rules())
	}
	if o.Rules()[0] != "deep-equal" {
		t.Fatalf("first rule = %q", o.Rules()[0])
	}
}

func TestMovieOracleEstimatorRanksBySimilarity(t *testing.T) {
	o := oracle.MovieOracle(oracle.SetTitle)
	mi := elem(t, `<movie><title>Mission: Impossible</title></movie>`)
	mi2 := elem(t, `<movie><title>Mission: Impossible II</title></movie>`)
	miOrder := elem(t, `<movie><title>Impossible Mission</title></movie>`)
	vSeq, _ := o.Decide(mi, mi2)
	vOrd, _ := o.Decide(mi, miOrder)
	if vSeq.Decision != oracle.Unknown || vOrd.Decision != oracle.Unknown {
		t.Fatalf("expected unknown verdicts, got %+v %+v", vSeq, vOrd)
	}
	if !(vOrd.P > vSeq.P) {
		t.Fatalf("word-order variant (%v) should score higher than sequel (%v)", vOrd.P, vSeq.P)
	}
}

func TestDecisionString(t *testing.T) {
	if oracle.Unknown.String() != "unknown" || oracle.MustMatch.String() != "must-match" ||
		oracle.CannotMatch.String() != "cannot-match" {
		t.Fatalf("decision strings wrong")
	}
	if !strings.Contains(oracle.Decision(9).String(), "9") {
		t.Fatalf("unknown decision string")
	}
}

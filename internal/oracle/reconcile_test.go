package oracle_test

import (
	"testing"

	"repro/internal/oracle"
)

func TestNameReconciler(t *testing.T) {
	r := oracle.NameReconciler()
	cases := []struct {
		a, b string
		want string
		ok   bool
	}{
		{"John Woo", "Woo, John", "John Woo", true},
		{"Woo, John", "John Woo", "John Woo", true},
		{"De Palma, Brian", "Brian De Palma", "Brian De Palma", true},
		{"Woo, John", "woo JOHN", "woo JOHN", true}, // prefers the comma-free form
		{"John Woo", "John Wu", "", false},          // different names: keep both
		{"", "", "", false},
	}
	for _, tc := range cases {
		got, ok := r(tc.a, tc.b)
		if ok != tc.ok || got != tc.want {
			t.Errorf("NameReconciler(%q,%q) = %q,%v; want %q,%v", tc.a, tc.b, got, ok, tc.want, tc.ok)
		}
	}
	// Both forms carry commas: fall back to the first.
	if got, ok := r("Woo, John", "John, Woo"); !ok || got != "Woo, John" {
		t.Errorf("double-comma reconciliation = %q,%v", got, ok)
	}
}

func TestOracleReconcileRegistration(t *testing.T) {
	o := oracle.New(nil, oracle.WithReconciler("director", oracle.NameReconciler()))
	if v, ok := o.Reconcile("director", "Woo, John", "John Woo"); !ok || v != "John Woo" {
		t.Fatalf("Reconcile = %q,%v", v, ok)
	}
	if _, ok := o.Reconcile("title", "a", "b"); ok {
		t.Fatalf("unregistered tag should not reconcile")
	}
	if _, ok := o.Reconcile("director", "John Woo", "Steven Spielberg"); ok {
		t.Fatalf("non-equivalent names should not reconcile")
	}
}

func TestMovieOracleFullSetHasReconciler(t *testing.T) {
	full := oracle.MovieOracle(oracle.SetFull)
	if _, ok := full.Reconcile("director", "Woo, John", "John Woo"); !ok {
		t.Fatalf("SetFull oracle should reconcile director names")
	}
	plain := oracle.MovieOracle(oracle.SetGenreTitleYear)
	if _, ok := plain.Reconcile("director", "Woo, John", "John Woo"); ok {
		t.Fatalf("non-full oracle should not reconcile")
	}
}

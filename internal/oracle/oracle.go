// Package oracle implements "The Oracle" of IMPrECISE (paper §IV–V): the
// component that determines the probability that two XML elements refer to
// the same real-world object (rwo), driven by knowledge rules.
//
// Rules make statements about when, with certainty, two elements match or
// do not match; whenever no rule can make an absolute decision the Oracle
// returns an Unknown verdict with a match-probability estimate, and the
// integration engine keeps both possibilities. The effectiveness of the
// rules at making absolute decisions is what controls how much uncertainty
// — how many nodes — the integration result contains (paper Table I).
package oracle

import (
	"fmt"
	"sync/atomic"

	"repro/internal/pxml"
)

// Decision classifies a pair of elements.
type Decision uint8

const (
	// Unknown means no rule could decide; the pair may or may not match.
	Unknown Decision = iota
	// MustMatch means the elements certainly refer to the same rwo.
	MustMatch
	// CannotMatch means the elements certainly refer to different rwos.
	CannotMatch
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Unknown:
		return "unknown"
	case MustMatch:
		return "must-match"
	case CannotMatch:
		return "cannot-match"
	default:
		return fmt.Sprintf("Decision(%d)", uint8(d))
	}
}

// Verdict is the Oracle's answer for one element pair.
type Verdict struct {
	Decision Decision
	// P is the probability that the pair refers to the same rwo. It is 1
	// for MustMatch, 0 for CannotMatch, and an estimate in (0,1) for
	// Unknown.
	P float64
	// Rule names the rule that decided, or describes the estimate for
	// Unknown verdicts.
	Rule string
}

// Rule inspects a pair of same-tag elements from different sources and
// either decides or abstains.
type Rule interface {
	// Name identifies the rule in statistics and error messages.
	Name() string
	// Apply returns a verdict; Decision == Unknown means the rule
	// abstains (its P is then ignored).
	Apply(a, b *pxml.Node) Verdict
}

// Estimator produces a match-probability estimate for an undecided pair.
type Estimator func(a, b *pxml.Node) float64

// Reconciler merges two conflicting text values of matched leaves into a
// single canonical value. Returning ok == false keeps both values as
// mutually exclusive possibilities (the default behaviour).
type Reconciler func(a, b string) (value string, ok bool)

// ConflictError reports two rules making opposite absolute decisions about
// the same pair.
type ConflictError struct {
	TagA, TagB string
	MustRule   string
	CannotRule string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("oracle: conflicting decisions on <%s>/<%s> pair: %q says must-match, %q says cannot-match",
		e.TagA, e.TagB, e.MustRule, e.CannotRule)
}

// Oracle evaluates rules over element pairs. Decide and Reconcile are safe
// for concurrent use (the parallel integration engine consults the Oracle
// from many workers) provided the installed rules, estimators and
// reconcilers are pure functions of their inputs; the call counters are
// atomic.
type Oracle struct {
	rules       []Rule
	prior       float64
	estimators  map[string]Estimator
	reconcilers map[string]Reconciler
	strict      bool
	calls       atomic.Int64
	undecided   atomic.Int64
}

// Option configures an Oracle.
type Option func(*Oracle)

// WithPrior sets the default match probability for undecided pairs
// (default 0.5). It must lie strictly between 0 and 1.
func WithPrior(p float64) Option {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("oracle: prior %g must be in (0,1)", p))
	}
	return func(o *Oracle) { o.prior = p }
}

// WithEstimator installs a probability estimator for undecided pairs of
// elements with the given tag. Estimates are clamped into
// [ProbFloor, 1-ProbFloor] so an estimator cannot silently make absolute
// decisions.
func WithEstimator(tag string, e Estimator) Option {
	return func(o *Oracle) { o.estimators[tag] = e }
}

// Strict makes rule conflicts an error instead of resolving them in favor
// of CannotMatch.
func Strict() Option {
	return func(o *Oracle) { o.strict = true }
}

// WithReconciler installs a value reconciler for matched leaves with the
// given tag, e.g. canonicalizing "Woo, John" and "John Woo" to one form
// instead of keeping both as possibilities.
func WithReconciler(tag string, r Reconciler) Option {
	return func(o *Oracle) { o.reconcilers[tag] = r }
}

// ProbFloor bounds Unknown estimates away from the absolute decisions.
const ProbFloor = 0.01

// New builds an Oracle with the given rules, applied in order. The paper's
// generic rule "two deep-equal elements refer to the same rwo" is always
// present; the other generic rule ("no two siblings in one source refer to
// the same rwo") is structural and enforced by the integration engine.
func New(rules []Rule, opts ...Option) *Oracle {
	o := &Oracle{
		rules:       append([]Rule{DeepEqual()}, rules...),
		prior:       0.5,
		estimators:  make(map[string]Estimator),
		reconcilers: make(map[string]Reconciler),
	}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// Rules returns the names of the installed rules, in application order.
func (o *Oracle) Rules() []string {
	names := make([]string, len(o.rules))
	for i, r := range o.rules {
		names[i] = r.Name()
	}
	return names
}

// Decide runs every rule on the pair and combines their verdicts. All rules
// are consulted (not just the first decisive one) so that conflicts are
// detected. With multiple agreeing decisive rules the first one is
// reported.
func (o *Oracle) Decide(a, b *pxml.Node) (Verdict, error) {
	o.calls.Add(1)
	var must, cannot string
	for _, r := range o.rules {
		v := r.Apply(a, b)
		switch v.Decision {
		case MustMatch:
			if must == "" {
				must = nameOf(r, v)
			}
		case CannotMatch:
			if cannot == "" {
				cannot = nameOf(r, v)
			}
		}
	}
	switch {
	case must != "" && cannot != "":
		if o.strict {
			return Verdict{}, &ConflictError{TagA: a.Tag(), TagB: b.Tag(), MustRule: must, CannotRule: cannot}
		}
		// Default resolution: a cannot-match is the safer absolute
		// decision (it keeps both elements rather than fabricating a
		// merge).
		return Verdict{Decision: CannotMatch, P: 0, Rule: cannot + " (overrides " + must + ")"}, nil
	case must != "":
		return Verdict{Decision: MustMatch, P: 1, Rule: must}, nil
	case cannot != "":
		return Verdict{Decision: CannotMatch, P: 0, Rule: cannot}, nil
	}
	o.undecided.Add(1)
	p := o.prior
	rule := "prior"
	if est, ok := o.estimators[a.Tag()]; ok {
		p = clamp(est(a, b))
		rule = "estimator"
	}
	return Verdict{Decision: Unknown, P: p, Rule: rule}, nil
}

func nameOf(r Rule, v Verdict) string {
	if v.Rule != "" {
		return v.Rule
	}
	return r.Name()
}

func clamp(p float64) float64 {
	if p < ProbFloor {
		return ProbFloor
	}
	if p > 1-ProbFloor {
		return 1 - ProbFloor
	}
	return p
}

// Reconcile asks the Oracle to merge two conflicting text values of
// matched elements with the given tag. ok == false means no reconciler is
// registered (or it declined) and both values stay possible.
func (o *Oracle) Reconcile(tag, a, b string) (string, bool) {
	r, ok := o.reconcilers[tag]
	if !ok {
		return "", false
	}
	return r(a, b)
}

// Calls reports how many pairs the Oracle has decided; Undecided how many
// of those got an Unknown verdict — the paper's "occasions on which The
// Oracle could not make an absolute decision".
func (o *Oracle) Calls() int { return int(o.calls.Load()) }

// Undecided reports the number of Unknown verdicts issued.
func (o *Oracle) Undecided() int { return int(o.undecided.Load()) }

// ResetStats clears the call counters.
func (o *Oracle) ResetStats() { o.calls.Store(0); o.undecided.Store(0) }

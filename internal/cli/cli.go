// Package cli implements the imprecise command-line tool. It lives in a
// package of its own (rather than package main) so that its behaviour is
// unit-testable.
package cli

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dtd"
	"repro/internal/explain"
	"repro/internal/feedback"
	"repro/internal/integrate"
	"repro/internal/oracle"
	"repro/internal/pxml"
	"repro/internal/query"
	"repro/internal/queryindex"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/shell"
	"repro/internal/worlds"
	"repro/internal/xmlcodec"
)

// Run executes one CLI invocation, writing human output to w.
func Run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return errors.New("missing subcommand: integrate | query | stats | worlds | feedback | generate | serve | db | replication | promote")
	}
	switch args[0] {
	case "integrate":
		return runIntegrate(args[1:], w)
	case "db":
		return runDBCmd(args[1:], w)
	case "replication":
		return runReplication(args[1:], w)
	case "promote":
		return runPromote(args[1:], w)
	case "query":
		return runQuery(args[1:], w)
	case "stats":
		return runStats(args[1:], w)
	case "worlds":
		return runWorlds(args[1:], w)
	case "feedback":
		return runFeedback(args[1:], w)
	case "explain":
		return runExplain(args[1:], w)
	case "generate":
		return runGenerate(args[1:], w)
	case "serve":
		return runServe(args[1:], w)
	case "shell":
		return shell.New(w).Run(os.Stdin)
	case "help", "-h", "--help":
		fmt.Fprintln(w, "subcommands: integrate, query, explain, stats, worlds, feedback, generate, serve, db, replication, promote, shell")
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func loadTree(path string) (*pxml.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return xmlcodec.Decode(f)
}

func saveTree(path string, t *pxml.Tree) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return xmlcodec.Encode(f, t, xmlcodec.EncodeOptions{Indent: "  "})
}

// parseRules maps comma-separated rule names to Oracle rules.
func parseRules(spec string) ([]oracle.Rule, error) {
	if spec == "" {
		return nil, nil
	}
	var rules []oracle.Rule
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(name) {
		case "genre":
			rules = append(rules, oracle.GenreRule())
		case "title":
			rules = append(rules, oracle.TitleRule())
		case "year":
			rules = append(rules, oracle.YearRule())
		case "director":
			rules = append(rules, oracle.DirectorRule())
		case "":
		default:
			return nil, fmt.Errorf("unknown rule %q (known: genre, title, year, director)", name)
		}
	}
	return rules, nil
}

func runIntegrate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("integrate", flag.ContinueOnError)
	aPath := fs.String("a", "", "source A document (or pass ≥2 positional files)")
	bPath := fs.String("b", "", "source B document (or pass ≥2 positional files)")
	dtdPath := fs.String("dtd", "", "DTD file with cardinality knowledge")
	ruleSpec := fs.String("rules", "", "comma-separated domain rules: genre,title,year,director")
	outPath := fs.String("o", "", "write the integrated document here")
	raw := fs.Bool("raw", false, "skip normalization (paper-style raw sizes)")
	truncate := fs.Bool("truncate", false, "truncate instead of failing on possibility explosion")
	maxMatchings := fs.Int("max-matchings", 0, "matching budget per candidate component (0 = default)")
	workers := fs.Int("workers", 0, "integration worker goroutines (0 = all CPUs, 1 = sequential)")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Two source forms: the classic -a/-b pair, or ≥2 positional files
	// integrated left-to-right as one batch (imprecise integrate a.xml
	// b.xml c.xml ...).
	var paths []string
	switch files := fs.Args(); {
	case *aPath != "" && *bPath != "":
		if len(files) > 0 {
			return errors.New("integrate: use either -a/-b or positional source files, not both")
		}
		paths = []string{*aPath, *bPath}
	case *aPath == "" && *bPath == "" && len(files) >= 2:
		paths = files
	default:
		return errors.New("integrate: provide -a and -b, or at least two source files (imprecise integrate a.xml b.xml c.xml ...)")
	}
	var schema *dtd.Schema
	if *dtdPath != "" {
		data, err := os.ReadFile(*dtdPath)
		if err != nil {
			return err
		}
		schema, err = dtd.ParseString(string(data))
		if err != nil {
			return err
		}
	}
	rules, err := parseRules(*ruleSpec)
	if err != nil {
		return err
	}
	cfg := integrate.Config{
		Oracle:                   oracle.New(rules, oracle.WithEstimator("movie", oracle.TitleEstimator())),
		Schema:                   schema,
		SkipNormalize:            *raw,
		TruncateOnExplosion:      *truncate,
		MaxMatchingsPerComponent: *maxMatchings,
		Workers:                  *workers,
	}
	res, err := loadTree(paths[0])
	if err != nil {
		return err
	}
	var stats integrate.Stats
	for step, path := range paths[1:] {
		next, err := loadTree(path)
		if err != nil {
			return err
		}
		merged, st, err := integrate.Integrate(res, next, cfg)
		if err != nil {
			return fmt.Errorf("integrate: %s: %w", path, err)
		}
		res = merged
		stats.Merge(*st)
		if len(paths) > 2 {
			fmt.Fprintf(w, "integrated:      %s (%d/%d), %d nodes, %s worlds\n",
				path, step+1, len(paths)-1, res.NodeCount(), res.WorldCount())
		}
	}
	s := res.CollectStats()
	fmt.Fprintf(w, "nodes:           %d (physical %d)\n", s.LogicalNodes, s.PhysicalNodes)
	fmt.Fprintf(w, "possible worlds: %s\n", s.Worlds)
	fmt.Fprintf(w, "choice points:   %d\n", res.ChoicePoints())
	fmt.Fprintf(w, "oracle:          %d pairs, %d must, %d cannot, %d undecided\n",
		stats.OracleCalls, stats.MustPairs, stats.CannotPairs, stats.UndecidedPairs)
	fmt.Fprintf(w, "matchings:       %d enumerated, %d pruned by schema\n",
		stats.MatchingsEnumerated, stats.MatchingsPruned)
	if stats.TruncatedComponents > 0 {
		fmt.Fprintf(w, "WARNING: %d components truncated by budget\n", stats.TruncatedComponents)
	}
	if *outPath != "" {
		if err := saveTree(*outPath, res); err != nil {
			return err
		}
		fmt.Fprintf(w, "written:         %s\n", *outPath)
	}
	return nil
}

func runQuery(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	dbPath := fs.String("db", "", "document to query (required)")
	qSrc := fs.String("q", "", "query (required)")
	top := fs.Int("top", 0, "show only the top N answers")
	samples := fs.Int("samples", 0, "Monte-Carlo samples when sampling is used")
	seed := fs.Int64("seed", 1, "sampling seed")
	method := fs.String("method", "auto", "evaluation method: auto | exact | enumerate | sample")
	workersN := fs.Int("workers", 0, "evaluation worker goroutines (0 = all CPUs, 1 = sequential; answers are identical either way)")
	explainPlan := fs.Bool("explain", false, "print the evaluation plan")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" || *qSrc == "" {
		return errors.New("query: -db and -q are required")
	}
	opts := query.Options{
		Method:  query.Method(*method),
		Samples: *samples,
		Seed:    query.SeedPtr(*seed),
		Workers: *workersN,
	}
	if err := opts.Validate(); err != nil {
		return err // already prefixed "query: invalid options: …"
	}
	t, err := loadTree(*dbPath)
	if err != nil {
		return err
	}
	q, err := query.Compile(*qSrc)
	if err != nil {
		return err
	}
	// One-shot invocations still benefit from the planner: the index
	// build is linear in the document and pays for itself by pruning.
	idx := queryindex.Build(t)
	res, err := query.EvalIndexed(t, q, opts, idx)
	if err != nil {
		return err
	}
	answers := res.Answers
	if *top > 0 {
		answers = res.Top(*top)
	}
	fmt.Fprintf(w, "method: %s\n", res.Method)
	if *explainPlan && res.Plan != nil {
		printPlan(w, res.Plan)
	}
	for _, a := range answers {
		fmt.Fprintf(w, "%6.1f%%  %s\n", a.P*100, a.Value)
	}
	if len(answers) == 0 {
		fmt.Fprintln(w, "(no answers)")
	}
	return nil
}

func printPlan(w io.Writer, pl *query.Plan) {
	fmt.Fprintf(w, "plan:   method=%s indexed=%v pruned=%.0f%% worlds=%s workers=%d\n",
		pl.Method, pl.Indexed, pl.PrunedFraction*100, pl.EstimatedWorlds, pl.Workers)
	if pl.BudgetExhausted {
		fmt.Fprintf(w, "        budget exhausted before completion\n")
	}
	if pl.AnchorTag != "" {
		fmt.Fprintf(w, "        anchor=<%s> bound=%s\n", pl.AnchorTag, orDash(pl.AnchorWorldBound))
	}
	fmt.Fprintf(w, "        reason: %s\n", pl.Reason)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func runExplain(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	dbPath := fs.String("db", "", "document (required)")
	qSrc := fs.String("q", "", "query (required)")
	value := fs.String("value", "", "the answer to explain (required)")
	maxChoices := fs.Int("max-choices", 0, "choice points to analyze (0 = default)")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" || *qSrc == "" || *value == "" {
		return errors.New("explain: -db, -q and -value are required")
	}
	t, err := loadTree(*dbPath)
	if err != nil {
		return err
	}
	q, err := query.Compile(*qSrc)
	if err != nil {
		return err
	}
	report, err := explain.Answer(t, q, *value, explain.Options{MaxChoices: *maxChoices})
	if err != nil {
		return err
	}
	fmt.Fprint(w, report.Format())
	return nil
}

func runStats(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	dbPath := fs.String("db", "", "document (required)")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" {
		return errors.New("stats: -db is required")
	}
	t, err := loadTree(*dbPath)
	if err != nil {
		return err
	}
	s := t.CollectStats()
	fmt.Fprintf(w, "logical nodes:   %d (prob %d, poss %d, elem %d)\n",
		s.LogicalNodes, s.LogicalProb, s.LogicalPoss, s.LogicalElem)
	fmt.Fprintf(w, "physical nodes:  %d\n", s.PhysicalNodes)
	fmt.Fprintf(w, "possible worlds: %s\n", s.Worlds)
	fmt.Fprintf(w, "choice points:   %d\n", t.ChoicePoints())
	fmt.Fprintf(w, "max depth:       %d\n", s.MaxDepth)
	fmt.Fprintf(w, "certain:         %v\n", t.IsCertain())
	return nil
}

func runWorlds(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("worlds", flag.ContinueOnError)
	dbPath := fs.String("db", "", "document (required)")
	max := fs.Int("max", 20, "maximum worlds to list")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" {
		return errors.New("worlds: -db is required")
	}
	t, err := loadTree(*dbPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "possible worlds: %s\n", t.WorldCount())
	n := 0
	worlds.Enumerate(t, func(wd worlds.World) bool {
		n++
		fmt.Fprintf(w, "--- world %d (p=%.6g) ---\n", n, wd.P)
		for _, e := range wd.Elements {
			fmt.Fprint(w, pxml.Sketch(e))
		}
		return n < *max
	})
	if !t.WorldCount().IsInt64() || int64(n) < t.WorldCount().Int64() {
		fmt.Fprintf(w, "... (%d shown)\n", n)
	}
	return nil
}

func runFeedback(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("feedback", flag.ContinueOnError)
	dbPath := fs.String("db", "", "document (required)")
	qSrc := fs.String("q", "", "query the answer came from (required)")
	value := fs.String("value", "", "the judged answer value (required)")
	judgment := fs.String("judgment", "incorrect", "correct | incorrect")
	outPath := fs.String("o", "", "write the conditioned document here")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" || *qSrc == "" || *value == "" {
		return errors.New("feedback: -db, -q and -value are required")
	}
	t, err := loadTree(*dbPath)
	if err != nil {
		return err
	}
	q, err := query.Compile(*qSrc)
	if err != nil {
		return err
	}
	var j feedback.Judgment
	switch *judgment {
	case "correct":
		j = feedback.Correct
	case "incorrect":
		j = feedback.Incorrect
	default:
		return fmt.Errorf("feedback: unknown judgment %q", *judgment)
	}
	session := feedback.NewSession(t, feedback.Options{})
	ev, err := session.Apply(q, *value, j)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "prior probability of feedback: %.6g\n", ev.PriorP)
	fmt.Fprintf(w, "possible worlds: %s -> %s\n", ev.WorldsBefore, ev.WorldsAfter)
	if *outPath != "" {
		if err := saveTree(*outPath, session.Tree()); err != nil {
			return err
		}
		fmt.Fprintf(w, "written: %s\n", *outPath)
	}
	return nil
}

// serveListen is swapped by tests to bind an ephemeral port and stop the
// server once it is up.
var serveListen = net.Listen

func runServe(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	dataDir := fs.String("data", "", "durable multi-database data directory (enables /dbs/{name} routes; recovers on start)")
	replicaOf := fs.String("replica-of", "", "primary base URL to follow as a read replica (requires -data; read verbs served locally, writes 403 to the primary)")
	walSegBytes := fs.Int64("wal-segment-bytes", 0, "write-ahead segment rotation threshold in bytes (0 = default 4MiB; with -data)")
	walEncoding := fs.String("wal-encoding", "", "write-ahead record format for new appends: binary (default) or json; reading accepts both (with -data)")
	compactEvery := fs.Int("compact-every", 0, "journaled ops between background compactions (0 = default 64, negative disables; with -data)")
	dbPath := fs.String("db", "", "initial document (default: empty document with -root tag)")
	rootTag := fs.String("root", "db", "root element tag when starting empty")
	dtdPath := fs.String("dtd", "", "DTD file with cardinality knowledge")
	ruleSpec := fs.String("rules", "", "comma-separated domain rules: genre,title,year,director")
	snapDir := fs.String("snapshots", "", "snapshot directory for /save and /load (empty disables them; ignored with -data)")
	cacheSize := fs.Int("query-cache", 0, "compiled-query LRU cache capacity (0 = default)")
	resultCacheSize := fs.Int("result-cache", 0, "evaluated-result LRU cache capacity (0 = default)")
	workers := fs.Int("workers", 0, "integration worker goroutines (0 = all CPUs, 1 = sequential)")
	queryWorkers := fs.Int("query-workers", 0, "per-query evaluation worker goroutines (0 = all CPUs, 1 = sequential; override per request with ?workers=)")
	queryBudget := fs.Duration("query-budget", 0, "per-query wall-clock budget (0 = unlimited; exhausted queries return 408 with budget_exhausted)")
	ingestQueue := fs.Int("ingest-queue", 0, "async ingest queue depth per database (0 disables POST /integrate?async=1)")
	memoEntries := fs.Int("memo-entries", 0, "cross-call integration memo entry cap (0 = default, negative disables the memo)")
	maxBody := fs.Int64("max-body", 0, "request body limit in bytes (0 = default 8MiB)")
	wireCompression := fs.Bool("wire-compression", true, "offer/accept flate-compressed replication pages on the binary wire (both roles)")
	storeMMap := fs.Bool("store-mmap", true, "mmap v5 snapshot documents on load (false forces the read-whole fallback; with -data)")
	quiet := fs.Bool("quiet", false, "disable the per-request log")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var schema *dtd.Schema
	if *dtdPath != "" {
		data, err := os.ReadFile(*dtdPath)
		if err != nil {
			return err
		}
		schema, err = dtd.ParseString(string(data))
		if err != nil {
			return err
		}
	}
	rules, err := parseRules(*ruleSpec)
	if err != nil {
		return err
	}
	if *ingestQueue < 0 {
		return errors.New("serve: -ingest-queue must be >= 0")
	}
	if *queryWorkers < 0 {
		return errors.New("serve: -query-workers must be >= 0")
	}
	if *queryBudget < 0 {
		return errors.New("serve: -query-budget must be >= 0")
	}
	cfg := core.Config{
		Schema:          schema,
		Rules:           rules,
		Integration:     integrate.Config{Workers: *workers},
		Query:           query.Options{Workers: *queryWorkers, TimeBudget: *queryBudget},
		QueryCacheSize:  *cacheSize,
		ResultCacheSize: *resultCacheSize,
		MemoEntries:     *memoEntries,
		IngestDepth:     *ingestQueue,
	}
	var logger *log.Logger
	if !*quiet {
		logger = log.New(w, "imprecise: ", log.LstdFlags)
	}
	opts := server.Options{
		SnapshotDir:       *snapDir,
		MaxBodyBytes:      *maxBody,
		NoWireCompression: !*wireCompression,
		Logger:            logger,
	}
	var (
		srv    *server.Server
		banner string
	)
	catOpts := catalog.Options{
		Config:       cfg,
		RootTag:      *rootTag,
		SegmentBytes: *walSegBytes,
		WALEncoding:  *walEncoding,
		CompactEvery: *compactEvery,
		DisableMMap:  !*storeMMap,
		Logger:       logger,
	}
	if *replicaOf != "" {
		// Read-replica mode: a follower catalog under -data tails the
		// primary's write-ahead logs; reads are local, writes are 403ed
		// to the primary. -dtd/-rules must match the primary's, since
		// shipped ops are re-executed locally.
		if *dataDir == "" {
			return errors.New("serve: -replica-of requires -data (the follower's own durable directory)")
		}
		if *dbPath != "" {
			return errors.New("serve: -db cannot be combined with -replica-of (the primary's databases are replicated)")
		}
		rep, err := replica.Open(*dataDir, replica.Options{
			Primary:       *replicaOf,
			Catalog:       catOpts,
			NoCompression: !*wireCompression,
			Logger:        logger,
		})
		if err != nil {
			return err
		}
		defer rep.Close()
		srv = server.NewReplica(rep, opts)
		banner = fmt.Sprintf("read replica of %s in %s", rep.Primary(), *dataDir)
	} else if *dataDir != "" {
		// Durable catalog mode: every database recovers (snapshot + WAL
		// tail) before the listener opens.
		if *dbPath != "" {
			return errors.New("serve: -db cannot be combined with -data (create databases via `imprecise db` or the /dbs API)")
		}
		cat, err := catalog.Open(*dataDir, catOpts)
		if err != nil {
			return err
		}
		defer cat.Close()
		// This node owns its queues (it is primary or standalone): start
		// draining anything recovered from the logs. No-ops without
		// -ingest-queue.
		for _, db := range cat.List() {
			db.Core().StartIngest()
		}
		srv = server.NewCatalog(cat, opts)
		banner = fmt.Sprintf("%d database(s) in %s", len(cat.Names()), *dataDir)
	} else {
		var tree *pxml.Tree
		var err error
		if *dbPath != "" {
			tree, err = loadTree(*dbPath)
		} else {
			tree, err = xmlcodec.DecodeString("<" + *rootTag + "/>")
		}
		if err != nil {
			return err
		}
		db, err := core.Open(tree, cfg)
		if err != nil {
			return err
		}
		db.StartIngest()
		srv = server.New(db, opts)
		banner = fmt.Sprintf("document: %d nodes, %s worlds", tree.NodeCount(), tree.WorldCount())
	}
	ln, err := serveListen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(w, "serving IMPrECISE on http://%s (%s)\n", ln.Addr(), banner)
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

// runDBCmd manages a durable catalog from the command line:
//
//	imprecise db -data DIR create NAME
//	imprecise db -data DIR list
//	imprecise db -data DIR stats NAME
//	imprecise db -data DIR drop NAME
//
// `list` and `stats` answer from the snapshot manifests alone by
// default: O(N) manifest reads, no document decode, no WAL replay, no
// catalog lock — they work even while a server holds the directory, and
// even when a document payload is corrupt. The numbers reflect the last
// compaction; ops journaled since show only as WAL bytes. Pass -full to
// run complete recovery instead (exact live numbers; requires the
// directory to be unlocked and healthy, and -dtd/-rules matching the
// server's, or replay of integrate ops may decide matches differently).
// To keep that risk off disk, the command never compacts: it leaves
// snapshots and logs exactly as it found them.
func runDBCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("db", flag.ContinueOnError)
	dataDir := fs.String("data", "", "catalog data directory (required)")
	rootTag := fs.String("root", "db", "root element tag for newly created databases")
	dtdPath := fs.String("dtd", "", "DTD file with cardinality knowledge (match the server's; with -full)")
	ruleSpec := fs.String("rules", "", "comma-separated domain rules (match the server's; with -full)")
	full := fs.Bool("full", false, "list/stats: run full recovery instead of the manifest-only quick path")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return errors.New("db: -data is required")
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return errors.New("db: verb required: create | list | drop | stats")
	}
	needName := func() (string, error) {
		if len(rest) != 2 {
			return "", fmt.Errorf("db %s: exactly one database name required", rest[0])
		}
		return rest[1], nil
	}
	if !*full {
		switch rest[0] {
		case "list":
			return quickList(*dataDir, w)
		case "stats":
			name, err := needName()
			if err != nil {
				return err
			}
			return quickStats(*dataDir, name, w)
		}
	}
	var schema *dtd.Schema
	if *dtdPath != "" {
		data, err := os.ReadFile(*dtdPath)
		if err != nil {
			return err
		}
		schema, err = dtd.ParseString(string(data))
		if err != nil {
			return err
		}
	}
	rules, err := parseRules(*ruleSpec)
	if err != nil {
		return err
	}
	cat, err := catalog.Open(*dataDir, catalog.Options{
		Config:  core.Config{Schema: schema, Rules: rules},
		RootTag: *rootTag,
		// Never rewrite state from an inspection command: no background
		// and no close-time compaction.
		CompactEvery: -1,
	})
	if err != nil {
		return err
	}
	defer cat.Close()
	switch rest[0] {
	case "create":
		name, err := needName()
		if err != nil {
			return err
		}
		if _, err := cat.Create(name); err != nil {
			return err
		}
		fmt.Fprintf(w, "created: %s\n", name)
		return nil
	case "list":
		dbs := cat.List()
		if len(dbs) == 0 {
			fmt.Fprintln(w, "(no databases)")
			return nil
		}
		for _, db := range dbs {
			c := db.Core()
			st := db.Stats()
			fmt.Fprintf(w, "%-20s %6d nodes  %8s worlds  %3d integrations  %3d feedback  wal seq %d (%d tail)\n",
				db.Name(), c.Tree().NodeCount(), c.WorldCount(), c.IntegrationCount(),
				c.FeedbackCount(), st.WAL.LastSeq, st.TailOps)
		}
		return nil
	case "stats":
		name, err := needName()
		if err != nil {
			return err
		}
		db, err := cat.Get(name)
		if err != nil {
			return err
		}
		c := db.Core()
		st := db.Stats()
		s := c.Stats()
		fmt.Fprintf(w, "database:        %s\n", db.Name())
		fmt.Fprintf(w, "logical nodes:   %d (physical %d)\n", s.LogicalNodes, s.PhysicalNodes)
		fmt.Fprintf(w, "possible worlds: %s\n", s.Worlds)
		fmt.Fprintf(w, "integrations:    %d\n", c.IntegrationCount())
		fmt.Fprintf(w, "feedback events: %d\n", c.FeedbackCount())
		fmt.Fprintf(w, "wal:             seq %d, %d segment(s), %d bytes, %d op(s) past snapshot\n",
			st.WAL.LastSeq, st.WAL.Segments, st.WAL.SizeBytes, st.TailOps)
		fmt.Fprintf(w, "snapshot:        seq %d, %d compaction(s), %d op(s) recovered at open\n",
			st.SnapshotSeq, st.Compactions, st.RecoveredOps)
		iq := c.IngestStats()
		if iq.Enabled || iq.Depth > 0 || iq.Accepted > 0 {
			fmt.Fprintf(w, "ingest queue:    %d pending (cap %d), %d accepted, %d applied, %d failed\n",
				iq.Depth, iq.Capacity, iq.Accepted, iq.Applied, iq.Failed)
		}
		ms := c.MemoStats()
		fmt.Fprintf(w, "integrate memo:  %d entr%s (cap %d), %d hit(s), %d miss(es), %d purge(s)\n",
			ms.Entries, plural(ms.Entries, "y", "ies"), ms.Capacity, ms.Hits, ms.Misses, ms.Purges)
		qs := c.QueryStats()
		rc := c.ResultCacheStats()
		fmt.Fprintf(w, "query exec:      %d active, %d started, %d canceled, %d budget abort(s)\n",
			qs.Active, qs.Started, qs.Canceled, qs.BudgetAborts)
		fmt.Fprintf(w, "query pool:      %d pooled task(s), %d inline (saturated), %d singleflight collapse(s)\n",
			qs.PooledTasks, qs.InlineTasks, rc.Collapses)
		fmt.Fprintf(w, "result cache:    %d/%d entr%s in %d shard(s), %d hit(s), %d miss(es)\n",
			rc.Size, rc.Capacity, plural(rc.Size, "y", "ies"), rc.Shards, rc.Hits, rc.Misses)
		return nil
	case "drop":
		name, err := needName()
		if err != nil {
			return err
		}
		if err := cat.Drop(name); err != nil {
			return err
		}
		fmt.Fprintf(w, "dropped: %s\n", name)
		return nil
	default:
		return fmt.Errorf("db: unknown verb %q (create | list | drop | stats)", rest[0])
	}
}

// quickList prints the manifest-only listing: one line per database
// from N manifest reads, never a snapshot decode or WAL replay.
func quickList(dataDir string, w io.Writer) error {
	stats, err := catalog.QuickStats(dataDir)
	if err != nil {
		return err
	}
	if len(stats) == 0 {
		fmt.Fprintln(w, "(no databases)")
		return nil
	}
	for _, qs := range stats {
		if !qs.HasSnapshot {
			fmt.Fprintf(w, "%-20s (no snapshot yet)  wal %d segment(s), %d bytes\n",
				qs.Name, qs.WALSegments, qs.WALBytes)
			continue
		}
		fmt.Fprintf(w, "%-20s %6d nodes  %8s worlds  %3d integrations  %3d feedback  snapshot seq %d (v%d)  wal %d bytes\n",
			qs.Name, qs.LogicalNodes, qs.Worlds, qs.Integrations,
			qs.Feedback, qs.SnapshotSeq, qs.FormatVersion, qs.WALBytes)
	}
	return nil
}

// quickStats prints one database's manifest-only stats.
func quickStats(dataDir, name string, w io.Writer) error {
	qs, err := catalog.ReadQuickStat(dataDir, name)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "database:        %s\n", qs.Name)
	if !qs.HasSnapshot {
		fmt.Fprintln(w, "snapshot:        (none yet)")
	} else {
		fmt.Fprintf(w, "logical nodes:   %d\n", qs.LogicalNodes)
		fmt.Fprintf(w, "possible worlds: %s\n", qs.Worlds)
		fmt.Fprintf(w, "integrations:    %d\n", qs.Integrations)
		fmt.Fprintf(w, "feedback events: %d\n", qs.Feedback)
		fmt.Fprintf(w, "snapshot:        seq %d, format v%d, epoch %d, saved %s\n",
			qs.SnapshotSeq, qs.FormatVersion, qs.Epoch, qs.SavedAt.Format(time.RFC3339))
	}
	fmt.Fprintf(w, "wal:             %d segment(s), %d bytes past snapshot\n", qs.WALSegments, qs.WALBytes)
	fmt.Fprintln(w, "(manifest-only view; pass -full for live recovery numbers)")
	return nil
}

// plural picks the singular or plural suffix for a count.
func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// replicationStatusBody decodes the /replication response of either
// role: primary rows carry last_seq/digest, replica rows the follower
// lag and sync counters.
type replicationStatusBody struct {
	Role      string `json:"role"`
	Epoch     uint64 `json:"epoch"`
	Primary   string `json:"primary"`
	Connected bool   `json:"connected"`
	LastError string `json:"last_error"`
	// WireEncoding is the replication encoding a replica negotiated with
	// its primary; Peers maps follower hosts to the encoding each one's
	// last fetch negotiated (primary side).
	WireEncoding string            `json:"wire_encoding"`
	Peers        map[string]string `json:"peers"`
	Databases    []struct {
		Name               string `json:"name"`
		LastSeq            uint64 `json:"last_seq"`
		Digest             string `json:"digest"`
		SnapshotSeq        uint64 `json:"snapshot_seq"`
		TailOps            uint64 `json:"tail_ops"`
		LastApplied        uint64 `json:"last_applied"`
		PrimarySeq         uint64 `json:"primary_seq"`
		Lag                uint64 `json:"lag"`
		CaughtUp           bool   `json:"caught_up"`
		OpsApplied         int64  `json:"ops_applied"`
		SnapshotsInstalled int64  `json:"snapshots_installed"`
		Divergences        int64  `json:"divergences"`
		LastError          string `json:"last_error"`
	} `json:"databases"`
}

// runReplication implements `imprecise replication status [-url U]`: it
// asks a running server for its /replication report and prints it.
func runReplication(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("replication", flag.ContinueOnError)
	baseURL := fs.String("url", "http://localhost:8080", "base URL of the server to inspect")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 || rest[0] != "status" {
		return errors.New("replication: verb required: status (imprecise replication status -url http://host:port)")
	}
	// Flags are accepted on either side of the verb (flag.Parse stops at
	// the first non-flag argument, and `replication status -url …` is the
	// natural order).
	if err := fs.Parse(rest[1:]); err != nil {
		return err
	}
	if len(fs.Args()) != 0 {
		return fmt.Errorf("replication status: unexpected arguments %q", fs.Args())
	}
	u := strings.TrimRight(*baseURL, "/") + "/replication"
	resp, err := http.Get(u)
	if err != nil {
		return fmt.Errorf("replication: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("replication: GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	var st replicationStatusBody
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("replication: decoding status: %w", err)
	}
	fmt.Fprintf(w, "role:      %s\n", st.Role)
	fmt.Fprintf(w, "epoch:     %d\n", st.Epoch)
	switch st.Role {
	case "replica":
		fmt.Fprintf(w, "primary:   %s\n", st.Primary)
		fmt.Fprintf(w, "connected: %v\n", st.Connected)
		if st.WireEncoding != "" {
			fmt.Fprintf(w, "encoding:  %s\n", st.WireEncoding)
		}
		if st.LastError != "" {
			fmt.Fprintf(w, "last err:  %s\n", st.LastError)
		}
		for _, db := range st.Databases {
			state := "catching up"
			if db.CaughtUp {
				state = "caught up"
			}
			fmt.Fprintf(w, "%-20s applied %6d / primary %6d  lag %4d  %s  (%d op(s) streamed, %d snapshot(s), %d divergence(s))\n",
				db.Name, db.LastApplied, db.PrimarySeq, db.Lag, state,
				db.OpsApplied, db.SnapshotsInstalled, db.Divergences)
			if db.LastError != "" {
				fmt.Fprintf(w, "%-20s   error: %s\n", "", db.LastError)
			}
		}
	default:
		// Primary-style rows; a demoted ex-primary additionally discloses
		// where writes moved.
		if st.Primary != "" {
			fmt.Fprintf(w, "primary:   %s\n", st.Primary)
		}
		// Stable peer order for scripting and tests.
		peers := make([]string, 0, len(st.Peers))
		for host := range st.Peers {
			peers = append(peers, host)
		}
		sort.Strings(peers)
		for _, host := range peers {
			fmt.Fprintf(w, "peer:      %s (%s wire)\n", host, st.Peers[host])
		}
		for _, db := range st.Databases {
			fmt.Fprintf(w, "%-20s seq %6d  digest %s  snapshot seq %6d  (%d tail op(s))\n",
				db.Name, db.LastSeq, db.Digest, db.SnapshotSeq, db.TailOps)
		}
	}
	if len(st.Databases) == 0 {
		fmt.Fprintln(w, "(no databases)")
	}
	return nil
}

// runPromote implements `imprecise promote -url U [-advertise A]`: it
// asks a running replica server to take over as primary (POST /promote)
// and prints the new epoch and the node being fenced.
func runPromote(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("promote", flag.ContinueOnError)
	baseURL := fs.String("url", "http://localhost:8080", "base URL of the replica server to promote")
	advertise := fs.String("advertise", "", "URL the promoted node should advertise to the cluster (default: its own address)")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(fs.Args()) != 0 {
		return fmt.Errorf("promote: unexpected arguments %q", fs.Args())
	}
	body, err := json.Marshal(map[string]string{"advertise_url": *advertise})
	if err != nil {
		return err
	}
	u := strings.TrimRight(*baseURL, "/") + "/promote"
	resp, err := http.Post(u, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("promote: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("promote: POST %s: %s: %s", u, resp.Status, strings.TrimSpace(string(raw)))
	}
	var pr struct {
		Role       string `json:"role"`
		Epoch      uint64 `json:"epoch"`
		OldPrimary string `json:"old_primary"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return fmt.Errorf("promote: decoding response: %w", err)
	}
	fmt.Fprintf(w, "role:  %s\n", pr.Role)
	fmt.Fprintf(w, "epoch: %d\n", pr.Epoch)
	if pr.OldPrimary != "" {
		fmt.Fprintf(w, "fencing old primary %s\n", pr.OldPrimary)
	}
	return nil
}

func runGenerate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	scenario := fs.String("scenario", "table1", "table1 | confusing | typical")
	n := fs.Int("n", 12, "IMDB-source size (confusing/typical)")
	nA := fs.Int("na", 6, "MPEG-7-source size (typical)")
	shared := fs.Int("shared", 2, "shared rwos (typical)")
	seed := fs.Int64("seed", 1, "generation seed")
	dir := fs.String("dir", ".", "output directory")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var pair datagen.Pair
	switch *scenario {
	case "table1":
		pair = datagen.TableISources()
	case "confusing":
		pair = datagen.Confusing(*n, *seed)
	case "typical":
		pair = datagen.Typical(*nA, *n, *shared, *seed)
	default:
		return fmt.Errorf("generate: unknown scenario %q", *scenario)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	files := map[string]*pxml.Tree{
		"a.xml":     pair.A.Tree,
		"b.xml":     pair.B.Tree,
		"truth.xml": pair.Truth,
	}
	for name, t := range files {
		path := filepath.Join(*dir, name)
		if err := saveTree(path, t); err != nil {
			return err
		}
		fmt.Fprintf(w, "written: %s\n", path)
	}
	dtdPath := filepath.Join(*dir, "movie.dtd")
	if err := os.WriteFile(dtdPath, []byte(datagen.MovieDTD().String()), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "written: %s\n", dtdPath)
	fmt.Fprintf(w, "shared rwos: %s\n", strings.Join(pair.SharedIDs, ", "))
	return nil
}

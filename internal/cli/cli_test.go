package cli_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
)

func run(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := cli.Run(args, &sb)
	return sb.String(), err
}

func mustRun(t *testing.T, args ...string) string {
	t.Helper()
	out, err := run(t, args...)
	if err != nil {
		t.Fatalf("cli %v: %v\n%s", args, err, out)
	}
	return out
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.xml", `<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`)
	b := writeFile(t, dir, "b.xml", `<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`)
	d := writeFile(t, dir, "p.dtd", `
		<!ELEMENT addressbook (person*)>
		<!ELEMENT person (nm, tel?)>
		<!ELEMENT nm (#PCDATA)>
		<!ELEMENT tel (#PCDATA)>`)
	out := filepath.Join(dir, "out.xml")

	got := mustRun(t, "integrate", "-a", a, "-b", b, "-dtd", d, "-o", out)
	if !strings.Contains(got, "possible worlds: 3") {
		t.Fatalf("integrate output:\n%s", got)
	}
	if !strings.Contains(got, "undecided") {
		t.Fatalf("integrate output missing oracle stats:\n%s", got)
	}

	got = mustRun(t, "query", "-db", out, "-q", `//person/tel`)
	if !strings.Contains(got, "75.0%") || !strings.Contains(got, "1111") {
		t.Fatalf("query output:\n%s", got)
	}

	got = mustRun(t, "query", "-db", out, "-q", `//person/tel`, "-top", "1")
	if strings.Count(got, "%") != 1 {
		t.Fatalf("top-1 output:\n%s", got)
	}

	got = mustRun(t, "stats", "-db", out)
	for _, want := range []string{"possible worlds: 3", "logical nodes:", "certain:         false"} {
		if !strings.Contains(got, want) {
			t.Fatalf("stats output missing %q:\n%s", want, got)
		}
	}

	got = mustRun(t, "worlds", "-db", out, "-max", "2")
	if !strings.Contains(got, "world 1") || !strings.Contains(got, "world 2") || strings.Contains(got, "world 3") {
		t.Fatalf("worlds output:\n%s", got)
	}

	got = mustRun(t, "explain", "-db", out, "-q", `//person/tel`, "-value", "2222")
	if !strings.Contains(got, "influence") || !strings.Contains(got, "0.75") {
		t.Fatalf("explain output:\n%s", got)
	}

	out2 := filepath.Join(dir, "out2.xml")
	got = mustRun(t, "feedback", "-db", out, "-q", `//person/tel`, "-value", "2222", "-judgment", "incorrect", "-o", out2)
	if !strings.Contains(got, "3 -> 1") {
		t.Fatalf("feedback output:\n%s", got)
	}
	got = mustRun(t, "stats", "-db", out2)
	if !strings.Contains(got, "certain:         true") {
		t.Fatalf("after feedback:\n%s", got)
	}
}

func TestCLIGenerate(t *testing.T) {
	dir := t.TempDir()
	got := mustRun(t, "generate", "-scenario", "table1", "-dir", dir)
	for _, f := range []string{"a.xml", "b.xml", "truth.xml", "movie.dtd"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v\n%s", f, err, got)
		}
	}
	if !strings.Contains(got, "shared rwos:") {
		t.Fatalf("generate output:\n%s", got)
	}
	// Generated files integrate cleanly.
	out := mustRun(t, "integrate",
		"-a", filepath.Join(dir, "a.xml"),
		"-b", filepath.Join(dir, "b.xml"),
		"-dtd", filepath.Join(dir, "movie.dtd"),
		"-rules", "genre,title,year")
	if !strings.Contains(out, "possible worlds: 112") {
		t.Fatalf("table1 integrate:\n%s", out)
	}

	mustRun(t, "generate", "-scenario", "confusing", "-n", "6", "-dir", filepath.Join(dir, "c"))
	mustRun(t, "generate", "-scenario", "typical", "-na", "4", "-n", "8", "-shared", "2", "-dir", filepath.Join(dir, "t"))
}

// TestCLIBatchIntegrate folds three sources in one invocation and checks
// the result matches chaining two pairwise -a/-b runs.
func TestCLIBatchIntegrate(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.xml", `<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`)
	b := writeFile(t, dir, "b.xml", `<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`)
	c := writeFile(t, dir, "c.xml", `<addressbook><person><nm>Mary</nm><tel>3333</tel></person></addressbook>`)
	d := writeFile(t, dir, "p.dtd", `
		<!ELEMENT addressbook (person*)>
		<!ELEMENT person (nm, tel?)>
		<!ELEMENT nm (#PCDATA)>
		<!ELEMENT tel (#PCDATA)>`)

	batchOut := filepath.Join(dir, "batch.xml")
	got := mustRun(t, "integrate", "-dtd", d, "-o", batchOut, "-workers", "2", a, b, c)
	if !strings.Contains(got, "integrated:") || !strings.Contains(got, "(2/2)") {
		t.Fatalf("batch output missing per-source progress:\n%s", got)
	}

	ab := filepath.Join(dir, "ab.xml")
	mustRun(t, "integrate", "-a", a, "-b", b, "-dtd", d, "-o", ab)
	abc := filepath.Join(dir, "abc.xml")
	pairwise := mustRun(t, "integrate", "-a", ab, "-b", c, "-dtd", d, "-o", abc)

	batchStats := mustRun(t, "stats", "-db", batchOut)
	pairStats := mustRun(t, "stats", "-db", abc)
	if batchStats != pairStats {
		t.Fatalf("batch and pairwise folds diverge:\nbatch:\n%s\npairwise:\n%s", batchStats, pairStats)
	}
	_ = pairwise
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.xml", `<a/>`)
	cases := [][]string{
		{},
		{"bogus"},
		{"integrate"},
		{"integrate", "-a", a},
		{"integrate", a},                   // one positional file is not a batch
		{"integrate", "-a", a, "-b", a, a}, // flags and positional files are exclusive
		{"integrate", a, a, "missing.xml"},
		{"integrate", "-a", "missing.xml", "-b", a},
		{"integrate", "-a", a, "-b", a, "-rules", "bogus"},
		{"integrate", "-a", a, "-b", a, "-dtd", "missing.dtd"},
		{"query"},
		{"query", "-db", a},
		{"query", "-db", "missing.xml", "-q", "//a"},
		{"query", "-db", a, "-q", "broken["},
		{"stats"},
		{"stats", "-db", "missing.xml"},
		{"worlds"},
		{"feedback"},
		{"feedback", "-db", a, "-q", "//a", "-value", "x", "-judgment", "maybe"},
		{"explain"},
		{"explain", "-db", a, "-q", "//a", "-value", "nope"},
		{"explain", "-db", a, "-q", "broken[", "-value", "x"},
		{"generate", "-scenario", "bogus"},
		{"serve", "-db", "missing.xml"},
		{"serve", "-dtd", "missing.dtd"},
		{"serve", "-rules", "bogus"},
		{"serve", "-root", ""},
		{"serve", "-addr", "not-an-address"},
	}
	for _, args := range cases {
		if _, err := run(t, args...); err == nil {
			t.Errorf("cli %v should fail", args)
		}
	}
}

func TestCLIHelp(t *testing.T) {
	got := mustRun(t, "help")
	if !strings.Contains(got, "subcommands") {
		t.Fatalf("help output:\n%s", got)
	}
}

func TestCLITruncateFlag(t *testing.T) {
	dir := t.TempDir()
	var items []string
	for i := 0; i < 6; i++ {
		items = append(items, "<item>"+strings.Repeat("x", i+1)+"</item>")
	}
	a := writeFile(t, dir, "a.xml", "<bag>"+strings.Join(items, "")+"</bag>")
	b := writeFile(t, dir, "b.xml", strings.ReplaceAll("<bag>"+strings.Join(items, "")+"</bag>", "x", "y"))
	// A 6×6 complete candidate component exceeds a 50-matching budget.
	if _, err := run(t, "integrate", "-a", a, "-b", b, "-max-matchings", "50"); err == nil {
		t.Fatalf("expected explosion error")
	}
	out := mustRun(t, "integrate", "-a", a, "-b", b, "-max-matchings", "50", "-truncate")
	if !strings.Contains(out, "WARNING") {
		t.Fatalf("truncate output should warn:\n%s", out)
	}
}

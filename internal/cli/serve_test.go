package cli

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServeEndToEnd boots `imprecise serve` on an ephemeral port, drives
// the HTTP API (integrate, query, feedback, save), and shuts it down by
// closing the listener.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	lnCh := make(chan net.Listener, 1)
	old := serveListen
	serveListen = func(network, addr string) (net.Listener, error) {
		ln, err := net.Listen(network, "127.0.0.1:0")
		if err == nil {
			lnCh <- ln
		}
		return ln, err
	}
	defer func() { serveListen = old }()

	dtdPath := filepath.Join(dir, "p.dtd")
	writeTestFile(t, dtdPath, `
		<!ELEMENT addressbook (person*)>
		<!ELEMENT person (nm, tel?)>
		<!ELEMENT nm (#PCDATA)>
		<!ELEMENT tel (#PCDATA)>`)

	done := make(chan error, 1)
	go func() {
		var sb strings.Builder
		done <- Run([]string{
			"serve", "-quiet",
			"-root", "addressbook",
			"-dtd", dtdPath,
			"-snapshots", filepath.Join(dir, "snaps"),
		}, &sb)
	}()

	var ln net.Listener
	select {
	case ln = <-lnCh:
	case err := <-done:
		t.Fatalf("serve exited before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatalf("serve did not start listening")
	}
	base := "http://" + ln.Addr().String()

	get := func(path string, want int) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d; body %s", path, resp.StatusCode, want, data)
		}
		return data
	}
	post := func(path, contentType, body string, want int) []byte {
		t.Helper()
		resp, err := http.Post(base+path, contentType, strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("POST %s: status %d, want %d; body %s", path, resp.StatusCode, want, data)
		}
		return data
	}

	get("/healthz", http.StatusOK)

	// Empty server: replace with source A, merge source B.
	post("/integrate?mode=replace", "application/xml",
		`<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`, http.StatusOK)
	data := post("/integrate", "application/xml",
		`<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`, http.StatusOK)
	var ir struct {
		Worlds string `json:"worlds"`
	}
	if err := json.Unmarshal(data, &ir); err != nil || ir.Worlds != "3" {
		t.Fatalf("integrate response %s (err %v)", data, err)
	}

	data = get("/query?q="+url.QueryEscape(`//person/tel`), http.StatusOK)
	var qr struct {
		Answers []struct {
			Value string  `json:"value"`
			P     float64 `json:"p"`
		} `json:"answers"`
	}
	if err := json.Unmarshal(data, &qr); err != nil || len(qr.Answers) != 2 {
		t.Fatalf("query response %s (err %v)", data, err)
	}

	post("/feedback", "application/json",
		`{"query":"//person/tel","value":"2222","correct":false}`, http.StatusOK)
	post("/save", "application/json", `{"name":"s1"}`, http.StatusOK)

	ln.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned error after close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("serve did not exit after listener close")
	}
}

func writeTestFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

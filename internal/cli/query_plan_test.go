package cli_test

import (
	"strings"
	"testing"
)

func fig2File(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	a := writeFile(t, dir, "a.xml", `<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`)
	b := writeFile(t, dir, "b.xml", `<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`)
	out := writeFile(t, dir, "out.xml", "")
	mustRun(t, "integrate", "-a", a, "-b", b, "-o", out)
	return out
}

// TestCLIQueryMethodFlag pins the -method flag: auto resolves to a
// concrete strategy, explicit strategies are echoed, and all agree on the
// answers.
func TestCLIQueryMethodFlag(t *testing.T) {
	out := fig2File(t)
	auto := mustRun(t, "query", "-db", out, "-q", `//person/tel`)
	if !strings.Contains(auto, "method: exact") {
		t.Fatalf("auto output:\n%s", auto)
	}
	enum := mustRun(t, "query", "-db", out, "-q", `//person/tel`, "-method", "enumerate")
	if !strings.Contains(enum, "method: enumerate") || !strings.Contains(enum, "1111") {
		t.Fatalf("enumerate output:\n%s", enum)
	}
	if _, err := run(t, "query", "-db", out, "-q", `//person/tel`, "-method", "fuzzy"); err == nil {
		t.Fatal("unknown method accepted")
	}
}

// TestCLIQueryExplainFlag checks -explain prints the plan.
func TestCLIQueryExplainFlag(t *testing.T) {
	out := fig2File(t)
	got := mustRun(t, "query", "-db", out, "-q", `//person[nm="John"]/tel`, "-explain")
	for _, want := range []string{"plan:", "method=exact", "indexed=true", "reason:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("explain output missing %q:\n%s", want, got)
		}
	}
}

// TestCLIQueryRejectsNegativeSamples pins the satellite bugfix as a CLI
// usage error.
func TestCLIQueryRejectsNegativeSamples(t *testing.T) {
	out := fig2File(t)
	_, err := run(t, "query", "-db", out, "-q", `//person/tel`, "-samples", "-5")
	if err == nil || !strings.Contains(err.Error(), "Samples") {
		t.Fatalf("negative samples error = %v, want explicit rejection", err)
	}
}

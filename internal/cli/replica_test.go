package cli

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/server"
)

// startServe boots one `imprecise serve` invocation on an ephemeral port
// and returns its base URL plus a shutdown func.
func startServe(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	lnCh := make(chan net.Listener, 1)
	old := serveListen
	serveListen = func(network, addr string) (net.Listener, error) {
		ln, err := net.Listen(network, "127.0.0.1:0")
		if err == nil {
			lnCh <- ln
		}
		return ln, err
	}
	done := make(chan error, 1)
	go func() {
		var sb strings.Builder
		done <- Run(append([]string{"serve", "-quiet"}, args...), &sb)
	}()
	var ln net.Listener
	select {
	case ln = <-lnCh:
	case err := <-done:
		serveListen = old
		t.Fatalf("serve exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		serveListen = old
		t.Fatalf("serve did not start listening")
	}
	serveListen = old
	stop := func() {
		ln.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("serve returned error after close: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("serve did not exit after listener close")
		}
	}
	return "http://" + ln.Addr().String(), stop
}

// TestServeReplicaOf is the two-process cluster smoke test at the CLI
// level: a primary with -data takes writes, `serve -replica-of` follows
// it, serves the replicated reads, and 403s writes; `imprecise
// replication status` reports both sides.
func TestServeReplicaOf(t *testing.T) {
	dir := t.TempDir()
	primaryURL, stopPrimary := startServe(t,
		"-data", filepath.Join(dir, "primary"),
		"-root", "addressbook",
		"-compact-every", "5",
		"-wal-segment-bytes", "65536",
	)
	defer stopPrimary()

	// Create a database and write through the primary.
	post := func(base, path, ct, body string, want int) []byte {
		t.Helper()
		resp, err := http.Post(base+path, ct, strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("POST %s: status %d, want %d; body %s", path, resp.StatusCode, want, data)
		}
		return data
	}
	post(primaryURL, "/dbs", "application/json", `{"name":"movies"}`, http.StatusCreated)
	post(primaryURL, "/dbs/movies/integrate", "application/xml",
		`<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`, http.StatusOK)

	// The knobs must surface in /stats.
	resp, err := http.Get(primaryURL + "/dbs/movies/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		WAL struct {
			SegmentLimitBytes int64  `json:"segment_limit_bytes"`
			CompactEvery      int    `json:"compact_every"`
			StoreFormat       int    `json:"store_format"`
			Encoding          string `json:"encoding"`
		} `json:"wal"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil || sr.WAL.SegmentLimitBytes != 65536 || sr.WAL.CompactEvery != 5 {
		t.Fatalf("stats knobs %+v (err %v)", sr.WAL, err)
	}
	// The format observability: the default build appends binary records.
	if sr.WAL.Encoding != "binary" || sr.WAL.StoreFormat == 0 {
		t.Fatalf("stats format fields %+v", sr.WAL)
	}

	replicaURL, stopReplica := startServe(t,
		"-data", filepath.Join(dir, "replica"),
		"-root", "addressbook",
		"-replica-of", primaryURL,
	)
	defer stopReplica()

	// Wait until the replica serves the replicated database.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(replicaURL + "/dbs/movies/query?q=%2F%2Fperson%2Ftel")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never served the replicated database")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Writes on the replica are 403 with the primary address.
	data := post(replicaURL, "/dbs/movies/integrate", "application/xml", `<addressbook/>`, http.StatusForbidden)
	var ro struct {
		Primary string `json:"primary"`
	}
	if err := json.Unmarshal(data, &ro); err != nil || ro.Primary != primaryURL {
		t.Fatalf("403 body %s (err %v), want primary %q", data, err, primaryURL)
	}

	// `imprecise replication status` against both roles.
	var out strings.Builder
	if err := Run([]string{"replication", "-url", primaryURL, "status"}, &out); err != nil {
		t.Fatalf("replication status (primary): %v", err)
	}
	if got := out.String(); !strings.Contains(got, "role:      primary") || !strings.Contains(got, "movies") {
		t.Fatalf("primary status output:\n%s", got)
	}
	out.Reset()
	deadline = time.Now().Add(30 * time.Second)
	for {
		out.Reset()
		if err := Run([]string{"replication", "-url", replicaURL, "status"}, &out); err != nil {
			t.Fatalf("replication status (replica): %v", err)
		}
		if s := out.String(); strings.Contains(s, "role:      replica") && strings.Contains(s, "caught up") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica status never caught up:\n%s", out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := out.String(); !strings.Contains(got, "primary:   "+primaryURL) ||
		!strings.Contains(got, "encoding:  binary") {
		t.Fatalf("replica status output:\n%s", got)
	}

	// The primary's status now shows the follower and its negotiated
	// wire encoding.
	out.Reset()
	if err := Run([]string{"replication", "-url", primaryURL, "status"}, &out); err != nil {
		t.Fatalf("replication status (primary, after follow): %v", err)
	}
	if got := out.String(); !strings.Contains(got, "peer:") || !strings.Contains(got, "(binary+flate wire)") {
		t.Fatalf("primary status missing peer encoding row:\n%s", got)
	}
}

// TestServeWireCompressionOff: -wire-compression=false on the primary
// pins every binary peer to the uncompressed wire even when the
// follower offers deflate, and -store-mmap=false (the read-whole
// fallback) serves the same data.
func TestServeWireCompressionOff(t *testing.T) {
	dir := t.TempDir()
	primaryURL, stopPrimary := startServe(t,
		"-data", filepath.Join(dir, "primary"),
		"-root", "addressbook",
		"-wire-compression=false",
		"-store-mmap=false",
	)
	defer stopPrimary()
	post := func(path, ct, body string, want int) {
		t.Helper()
		resp, err := http.Post(primaryURL+path, ct, strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("POST %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	post("/dbs", "application/json", `{"name":"movies"}`, http.StatusCreated)
	post("/dbs/movies/integrate", "application/xml",
		`<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`, http.StatusOK)

	replicaURL, stopReplica := startServe(t,
		"-data", filepath.Join(dir, "replica"),
		"-root", "addressbook",
		"-replica-of", primaryURL,
	)
	defer stopReplica()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(replicaURL + "/dbs/movies/query?q=%2F%2Fperson%2Ftel")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never served the replicated database")
		}
		time.Sleep(20 * time.Millisecond)
	}
	var out strings.Builder
	if err := Run([]string{"replication", "-url", primaryURL, "status"}, &out); err != nil {
		t.Fatalf("replication status: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "(binary wire)") || strings.Contains(got, "binary+flate") {
		t.Fatalf("compression-off primary negotiated the wrong wire:\n%s", got)
	}
}

// TestServeReplicaFlagValidation: -replica-of without -data (or with
// -db) is a usage error before anything binds or syncs.
func TestServeReplicaFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := Run([]string{"serve", "-replica-of", "http://localhost:1"}, &sb); err == nil ||
		!strings.Contains(err.Error(), "-data") {
		t.Fatalf("missing -data not rejected: %v", err)
	}
	if err := Run([]string{"serve", "-replica-of", "http://localhost:1",
		"-data", t.TempDir(), "-db", "x.xml"}, &sb); err == nil ||
		!strings.Contains(err.Error(), "-db") {
		t.Fatalf("-db with -replica-of not rejected: %v", err)
	}
}

// TestReplicationStatusCmdErrors: the status verb validates its
// arguments and surfaces HTTP failures.
func TestReplicationStatusCmdErrors(t *testing.T) {
	var sb strings.Builder
	if err := Run([]string{"replication"}, &sb); err == nil || !strings.Contains(err.Error(), "status") {
		t.Fatalf("missing verb not rejected: %v", err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	if err := Run([]string{"replication", "-url", ts.URL, "status"}, &sb); err == nil ||
		!strings.Contains(err.Error(), "500") {
		t.Fatalf("HTTP failure not surfaced: %v", err)
	}
}

// TestReplicationStatusAgainstHandler exercises the printer against a
// real catalog handler without going through serve.
func TestReplicationStatusAgainstHandler(t *testing.T) {
	cat, err := catalog.Open(t.TempDir(), catalog.Options{RootTag: "addressbook"})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if _, err := cat.Create("x"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewCatalog(cat, server.Options{}).Handler())
	defer ts.Close()
	var out strings.Builder
	if err := Run([]string{"replication", "-url", ts.URL + "/", "status"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "x") || !strings.Contains(got, "seq") {
		t.Fatalf("status output:\n%s", got)
	}
	// The natural flag order — verb first — must work too (flag.Parse
	// stops at the first non-flag argument; the verb handler re-parses).
	out.Reset()
	if err := Run([]string{"replication", "status", "-url", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "role:      primary") {
		t.Fatalf("verb-first status output:\n%s", out.String())
	}
	if err := Run([]string{"replication", "status", "extra"}, &out); err == nil {
		t.Fatal("trailing arguments not rejected")
	}
}

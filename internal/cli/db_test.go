package cli

import (
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
)

const (
	dbSrcA = `<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`
	dbSrcB = `<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := Run(args, &sb); err != nil {
		t.Fatalf("Run(%v): %v\noutput: %s", args, err, sb.String())
	}
	return sb.String()
}

func TestDBCreateListStatsDrop(t *testing.T) {
	data := t.TempDir()
	out := runCLI(t, "db", "-data", data, "create", "movies")
	if !strings.Contains(out, "created: movies") {
		t.Fatalf("create output: %s", out)
	}
	out = runCLI(t, "db", "-data", data, "list")
	if !strings.Contains(out, "movies") {
		t.Fatalf("list output: %s", out)
	}
	out = runCLI(t, "db", "-data", data, "stats", "movies")
	if !strings.Contains(out, "database:        movies") || !strings.Contains(out, "integrations:    0") {
		t.Fatalf("stats output: %s", out)
	}
	runCLI(t, "db", "-data", data, "drop", "movies")
	out = runCLI(t, "db", "-data", data, "list")
	if !strings.Contains(out, "(no databases)") {
		t.Fatalf("list after drop: %s", out)
	}
	// Errors: missing name, unknown verb, unknown database.
	var sb strings.Builder
	if err := Run([]string{"db", "-data", data, "create"}, &sb); err == nil {
		t.Fatalf("create without name should fail")
	}
	if err := Run([]string{"db", "-data", data, "frobnicate"}, &sb); err == nil {
		t.Fatalf("unknown verb should fail")
	}
	if err := Run([]string{"db", "-data", data, "stats", "nope"}, &sb); err == nil {
		t.Fatalf("stats on missing database should fail")
	}
	if err := Run([]string{"db", "list"}, &sb); err == nil {
		t.Fatalf("missing -data should fail")
	}
}

// TestDBStatsAfterKillShowsRecoveredState is the CLI half of the
// kill-restart acceptance: mutate a database through a catalog, abandon
// it without shutdown, and read the recovered counts back with
// `imprecise db stats`.
func TestDBStatsAfterKillShowsRecoveredState(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	cat, err := catalog.Open(data, catalog.Options{RootTag: "addressbook", CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	db, err := cat.Create("movies")
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{dbSrcA, dbSrcB} {
		if _, err := db.Core().IntegrateXMLString(src); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Core().Feedback(`//person[nm="John"]/tel`, "2222", false); err != nil {
		t.Fatal(err)
	}
	wantWorlds := db.Core().WorldCount().String()

	// Kill: clone only the fsynced bytes, never call Close.
	killed := filepath.Join(dir, "killed")
	copyAll(t, data, killed)

	// -full: the quick path reads manifests only, and this catalog never
	// compacted — the live counts exist solely in the replayed log.
	out := runCLI(t, "db", "-data", killed, "-full", "stats", "movies")
	for _, want := range []string{
		"integrations:    2",
		"feedback events: 1",
		"possible worlds: " + wantWorlds,
		"3 op(s) recovered at open",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats after kill missing %q:\n%s", want, out)
		}
	}
	cat.Close()
}

// TestDBQuickListManifestOnly is the regression test for the
// manifest-only stat path: `db list`/`db stats` must answer without
// decoding document payloads or taking the catalog lock — a corrupt
// document and a concurrently held directory both stop -full but not
// the quick path.
func TestDBQuickListManifestOnly(t *testing.T) {
	data := t.TempDir()
	cat, err := catalog.Open(data, catalog.Options{RootTag: "addressbook"})
	if err != nil {
		t.Fatal(err)
	}
	db, err := cat.Create("movies")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Core().IntegrateXMLString(dbSrcA); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	wantWorlds := db.Core().WorldCount().String()

	// While the catalog holds the directory lock, the quick path still
	// answers; -full must refuse (single-process lock).
	out := runCLI(t, "db", "-data", data, "list")
	if !strings.Contains(out, "movies") || !strings.Contains(out, wantWorlds+" worlds") {
		t.Fatalf("quick list under lock: %s", out)
	}
	var sb strings.Builder
	if err := Run([]string{"db", "-data", data, "-full", "list"}, &sb); err == nil {
		t.Fatal("-full list succeeded while another process holds the directory")
	}
	cat.Close()

	out = runCLI(t, "db", "-data", data, "stats", "movies")
	for _, want := range []string{"possible worlds: " + wantWorlds, "integrations:    1", "manifest-only"} {
		if !strings.Contains(out, want) {
			t.Fatalf("quick stats missing %q:\n%s", want, out)
		}
	}

	// Corrupt the snapshot's document payload: the quick path never reads
	// it, the full path must fail loudly.
	docs, err := filepath.Glob(filepath.Join(data, "movies", "state", "document-*.bin"))
	if err != nil || len(docs) == 0 {
		t.Fatalf("no document payload found: %v (%v)", docs, err)
	}
	for _, doc := range docs {
		if err := os.WriteFile(doc, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out = runCLI(t, "db", "-data", data, "list")
	if !strings.Contains(out, "movies") {
		t.Fatalf("quick list after payload corruption: %s", out)
	}
	sb.Reset()
	if err := Run([]string{"db", "-data", data, "-full", "list"}, &sb); err == nil {
		t.Fatal("-full list accepted a corrupt document payload")
	}
}

func copyAll(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if info.IsDir() {
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatalf("copyAll: %v", err)
	}
}

// TestServeDataEndToEnd boots `imprecise serve -data`, creates a
// database over HTTP, mutates it, restarts the server on the same
// directory and checks the database recovered.
func TestServeDataEndToEnd(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data")

	serve := func() (string, net.Listener, chan error) {
		lnCh := make(chan net.Listener, 1)
		old := serveListen
		serveListen = func(network, addr string) (net.Listener, error) {
			ln, err := net.Listen(network, "127.0.0.1:0")
			if err == nil {
				lnCh <- ln
			}
			return ln, err
		}
		t.Cleanup(func() { serveListen = old })
		done := make(chan error, 1)
		go func() {
			var sb strings.Builder
			done <- Run([]string{"serve", "-quiet", "-root", "addressbook", "-data", data}, &sb)
		}()
		select {
		case ln := <-lnCh:
			return "http://" + ln.Addr().String(), ln, done
		case err := <-done:
			t.Fatalf("serve -data exited before listening: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatalf("serve -data did not start")
		}
		return "", nil, nil
	}
	req := func(base, method, path, body string, want int) []byte {
		t.Helper()
		r, err := http.NewRequest(method, base+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("%s %s: status %d, want %d; body %s", method, path, resp.StatusCode, want, b)
		}
		return b
	}

	base, ln, done := serve()
	req(base, "PUT", "/dbs/movies", "", http.StatusCreated)
	req(base, "POST", "/dbs/movies/integrate", dbSrcA, http.StatusOK)
	req(base, "POST", "/dbs/movies/integrate", dbSrcB, http.StatusOK)
	statsBefore := string(req(base, "GET", "/dbs/movies/stats", "", http.StatusOK))
	ln.Close()
	if err := <-done; err != nil {
		t.Fatalf("first serve: %v", err)
	}

	base2, ln2, done2 := serve()
	statsAfter := string(req(base2, "GET", "/dbs/movies/stats", "", http.StatusOK))
	if !strings.Contains(statsAfter, `"integrations": 2`) {
		t.Fatalf("restarted stats lost history:\nbefore %s\nafter %s", statsBefore, statsAfter)
	}
	ln2.Close()
	if err := <-done2; err != nil {
		t.Fatalf("second serve: %v", err)
	}
}

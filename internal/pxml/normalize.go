package pxml

import (
	"fmt"
	"sort"
)

// Normalize returns an equivalent document in canonical form:
//
//   - duplicate alternatives of a choice point (structurally equal
//     possibility contents) are merged, their probabilities added;
//   - alternatives with probability below ProbEpsilon are dropped;
//   - surviving probabilities are rescaled to sum to exactly 1;
//   - alternatives are ordered by descending probability, ties broken by
//     structural hash, for deterministic output;
//   - trivial nested structure is preserved (the layered form is already
//     canonical for certain data).
//
// Normalization is applied bottom-up with memoization, so shared subtrees
// are normalized once and sharing is preserved.
func (t *Tree) Normalize() (*Tree, error) {
	memo := make(map[*Node]*Node)
	root, err := normalizeNode(t.root, memo)
	if err != nil {
		return nil, err
	}
	return NewTree(root)
}

// MustNormalize is Normalize that panics on error (which only occurs on
// documents that are already invalid, e.g. all alternatives pruned).
func (t *Tree) MustNormalize() *Tree {
	nt, err := t.Normalize()
	if err != nil {
		panic(err)
	}
	return nt
}

func normalizeNode(n *Node, memo map[*Node]*Node) (*Node, error) {
	// A proven fixpoint short-circuits the whole subtree: the flag is
	// only ever set after a full walk returned the node unchanged, and
	// normalization is deterministic over immutable nodes, so the answer
	// cannot differ now.
	if n.normalized.Load() {
		return n, nil
	}
	if out, ok := memo[n]; ok {
		return out, nil
	}
	var out *Node
	switch n.kind {
	case KindElem:
		kids, changed, err := normalizeKids(n.kids, memo)
		if err != nil {
			return nil, err
		}
		if !changed {
			out = n
		} else {
			out = NewElem(n.tag, n.text, kids...)
		}
	case KindPoss:
		kids, changed, err := normalizeKids(n.kids, memo)
		if err != nil {
			return nil, err
		}
		if !changed {
			out = n
		} else {
			out = NewPoss(n.prob, kids...)
		}
	case KindProb:
		var err error
		out, err = normalizeProb(n, memo)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("pxml: normalize: unknown kind %d", n.kind)
	}
	if out == n {
		n.normalized.Store(true)
	}
	memo[n] = out
	return out, nil
}

func normalizeKids(kids []*Node, memo map[*Node]*Node) ([]*Node, bool, error) {
	changed := false
	out := kids
	for i, k := range kids {
		nk, err := normalizeNode(k, memo)
		if err != nil {
			return nil, false, err
		}
		if nk != k && !changed {
			changed = true
			out = make([]*Node, len(kids))
			copy(out, kids[:i])
		}
		if changed {
			out[i] = nk
		}
	}
	return out, changed, nil
}

func normalizeProb(n *Node, memo map[*Node]*Node) (*Node, error) {
	type alt struct {
		poss *Node
		hash uint64
		prob float64
	}
	var alts []alt
	hmemo := make(map[*Node]uint64)
	for _, p := range n.kids {
		np, err := normalizeNode(p, memo)
		if err != nil {
			return nil, err
		}
		if np.prob < ProbEpsilon {
			continue
		}
		h := contentHash(np, hmemo)
		merged := false
		for i := range alts {
			if alts[i].hash == h && sameContent(alts[i].poss, np) {
				alts[i].prob += np.prob
				merged = true
				break
			}
		}
		if !merged {
			alts = append(alts, alt{poss: np, hash: h, prob: np.prob})
		}
	}
	if len(alts) == 0 {
		return nil, fmt.Errorf("pxml: normalize: choice point with no alternative above epsilon")
	}
	sum := 0.0
	for _, a := range alts {
		sum += a.prob
	}
	sort.SliceStable(alts, func(i, j int) bool {
		if alts[i].prob != alts[j].prob {
			return alts[i].prob > alts[j].prob
		}
		return alts[i].hash < alts[j].hash
	})
	poss := make([]*Node, len(alts))
	for i, a := range alts {
		p := a.prob / sum
		if len(alts) == 1 {
			p = 1
		}
		if samePoss(a.poss, p) {
			poss[i] = a.poss
		} else {
			poss[i] = NewPoss(p, a.poss.kids...)
		}
	}
	// Reuse the original node if nothing changed.
	if len(poss) == len(n.kids) {
		same := true
		for i := range poss {
			if poss[i] != n.kids[i] {
				same = false
				break
			}
		}
		if same {
			return n, nil
		}
	}
	return NewProb(poss...), nil
}

func samePoss(p *Node, prob float64) bool {
	d := p.prob - prob
	return d < ProbEpsilon && d > -ProbEpsilon
}

// contentHash hashes a possibility node's contents, ignoring its own
// probability, so alternatives with equal contents can be merged.
func contentHash(poss *Node, memo map[*Node]uint64) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for _, k := range poss.kids {
		kh := hashMemo(k, memo)
		h ^= kh
		h *= 1099511628211
	}
	return h
}

// sameContent compares two possibility nodes' contents, ignoring their own
// probabilities.
func sameContent(a, b *Node) bool {
	if len(a.kids) != len(b.kids) {
		return false
	}
	for i := range a.kids {
		if !Equal(a.kids[i], b.kids[i]) {
			return false
		}
	}
	return true
}

package pxml

import "testing"

func TestBuilderSharesEqualSubtrees(t *testing.T) {
	b := NewBuilder()
	l1 := b.Leaf("tel", "1111")
	l2 := b.Leaf("tel", "1111")
	if l1 != l2 {
		t.Fatalf("equal leaves not shared")
	}
	e1 := b.Elem("person", "", b.Certain(b.Leaf("nm", "John")), b.Certain(l1))
	e2 := b.Elem("person", "", b.Certain(b.Leaf("nm", "John")), b.Certain(l2))
	if e1 != e2 {
		t.Fatalf("equal elements not shared")
	}
	if b.Leaf("tel", "2222") == l1 {
		t.Fatalf("distinct leaves shared")
	}
}

func TestInternTreePreservesEquality(t *testing.T) {
	person := func(tel string) *Node {
		return NewElem("person", "",
			Certain(NewLeaf("nm", "John")),
			Certain(NewLeaf("tel", tel)),
		)
	}
	// Two structurally identical persons, separately allocated.
	book := NewElem("addressbook", "",
		Certain(person("1111")),
		Certain(person("1111")),
		Certain(person("2222")),
	)
	tr := CertainTree(book)
	it := InternTree(tr)
	if !Equal(tr.Root(), it.Root()) {
		t.Fatalf("interned tree not Equal to original")
	}
	if got, want := tr.NodeCount(), it.NodeCount(); got != want {
		t.Fatalf("logical size changed: %d -> %d", got, want)
	}
	if before, after := tr.PhysicalNodeCount(), it.PhysicalNodeCount(); after >= before {
		t.Fatalf("interning did not share: physical %d -> %d", before, after)
	}
	// The two identical persons collapse into one physical subtree.
	elems := it.RootElements()
	kids := elems[0].Children()
	p1 := kids[0].Child(0).Child(0)
	p2 := kids[1].Child(0).Child(0)
	if p1 != p2 {
		t.Fatalf("identical person subtrees not shared after interning")
	}
}

func TestInternTreeIdempotentOnCanonical(t *testing.T) {
	b := NewBuilder()
	leaf := b.Leaf("a", "x")
	root := b.Elem("r", "", b.Certain(leaf), b.Certain(leaf))
	tr := MustTree(b.Certain(root))
	// Deep interning through the same builder returns the identical root.
	if got := b.InternTree(tr); got.Root() != tr.Root() {
		t.Fatalf("canonical tree rebuilt by InternTree")
	}
}

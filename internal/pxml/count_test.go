package pxml_test

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/pxml"
	"repro/internal/pxmltest"
)

func TestCountsOnFig2(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	// Count by hand:
	// root prob(1) + poss(1) + addressbook(1)
	// + inner prob(1) + 2 poss
	//   merged person: person + prob + poss + nm + prob + 2 poss + 2 tel = 9
	//   separate: 2 × (person + 2×(prob+poss+leaf)) = 2 × 7 = 14
	// total = 3 + 3 + 9 + 14 = 29
	if got := tr.NodeCount(); got != 29 {
		t.Fatalf("NodeCount = %d, want 29\n%s", got, tr)
	}
	if got := tr.WorldCount(); got.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("WorldCount = %s, want 3", got)
	}
	if got := tr.ChoicePoints(); got != 2 {
		t.Fatalf("ChoicePoints = %d, want 2", got)
	}
	s := tr.CollectStats()
	if s.LogicalNodes != 29 {
		t.Fatalf("stats logical = %d", s.LogicalNodes)
	}
	if s.LogicalProb+s.LogicalPoss+s.LogicalElem != s.LogicalNodes {
		t.Fatalf("kind counts don't add up: %+v", s)
	}
	if s.Worlds.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("stats worlds = %s", s.Worlds)
	}
	if s.MaxDepth < 6 {
		t.Fatalf("MaxDepth = %d, want >= 6", s.MaxDepth)
	}
}

func TestSharedSubtreesLogicalVsPhysical(t *testing.T) {
	// The shared movie subtree has 4 nodes (movie, prob, poss, title); it
	// occurs three times across the two alternatives.
	shared := pxml.NewElem("movie", "", pxml.Certain(pxml.NewLeaf("title", "Jaws")))
	root := pxml.NewElem("db", "", pxml.NewProb(
		pxml.NewPoss(0.5, shared),
		pxml.NewPoss(0.5, shared, shared),
	))
	tr := pxml.CertainTree(root)
	logical := tr.NodeCount()
	physical := tr.PhysicalNodeCount()
	if logical <= physical {
		t.Fatalf("logical %d should exceed physical %d with sharing", logical, physical)
	}
	// logical: root prob+poss + db + prob + 2 poss + 3×4 = 18
	if logical != 18 {
		t.Fatalf("logical = %d, want 18", logical)
	}
	// physical: root prob+poss + db + prob + 2 poss + 4 = 10
	if physical != 10 {
		t.Fatalf("physical = %d, want 10", physical)
	}
	stats := tr.CollectStats()
	if stats.PhysicalNodes != physical || stats.LogicalNodes != logical {
		t.Fatalf("stats disagree: %+v", stats)
	}
}

func TestWorldCountMultipliesAcrossIndependentChoices(t *testing.T) {
	choice := func(n int) *pxml.Node {
		poss := make([]*pxml.Node, n)
		for i := range poss {
			poss[i] = pxml.NewPoss(1/float64(n), pxml.NewLeaf("v", string(rune('a'+i))))
		}
		return pxml.NewProb(poss...)
	}
	root := pxml.NewElem("r", "", choice(2), choice(3), choice(5))
	tr := pxml.CertainTree(root)
	if got := tr.WorldCount(); got.Cmp(big.NewInt(30)) != 0 {
		t.Fatalf("WorldCount = %s, want 2*3*5 = 30", got)
	}
}

func TestWorldCountNestedChoices(t *testing.T) {
	// A choice whose alternative contains a further choice: worlds add then
	// multiply. outer: alt1 has inner 2-way choice, alt2 is plain. Total 3.
	inner := pxml.NewElem("x", "", pxml.NewProb(
		pxml.NewPoss(0.5, pxml.NewLeaf("y", "1")),
		pxml.NewPoss(0.5, pxml.NewLeaf("y", "2")),
	))
	root := pxml.NewElem("r", "", pxml.NewProb(
		pxml.NewPoss(0.5, inner),
		pxml.NewPoss(0.5, pxml.NewLeaf("z", "")),
	))
	tr := pxml.CertainTree(root)
	if got := tr.WorldCount(); got.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("WorldCount = %s, want 3", got)
	}
}

func TestCertainTreeHasOneWorld(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		elem := pxmltest.RandomCertainElem(rng, 3, 3)
		tr := pxml.CertainTree(elem)
		if got := tr.WorldCount(); got.Cmp(big.NewInt(1)) != 0 {
			t.Fatalf("certain tree has %s worlds", got)
		}
		if !tr.IsCertain() {
			t.Fatalf("certain tree reported uncertain")
		}
	}
}

func TestRandomTreesValidateAndCount(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := pxmltest.DefaultGenConfig()
	for i := 0; i < 50; i++ {
		tr := pxmltest.RandomTree(rng, cfg)
		if err := tr.Validate(); err != nil {
			t.Fatalf("random tree %d invalid: %v\n%s", i, err, tr)
		}
		if tr.NodeCount() < 3 {
			t.Fatalf("random tree %d too small", i)
		}
		if tr.WorldCount().Sign() <= 0 {
			t.Fatalf("random tree %d has non-positive world count", i)
		}
	}
}

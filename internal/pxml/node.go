// Package pxml implements the probabilistic XML data model of IMPrECISE
// (de Keijzer & van Keulen, ICDE 2008) and its formal basis (van Keulen,
// de Keijzer & Alink, ICDE 2005).
//
// A probabilistic XML document is a strictly layered tree built from three
// node kinds:
//
//	ProbNode (▽)  — a choice point. Its children are PossNodes. The root of
//	                every document is a ProbNode.
//	PossNode (○)  — one alternative of a choice point, annotated with a
//	                probability. Sibling PossNodes are mutually exclusive and
//	                their probabilities sum to 1. Its children are ElemNodes.
//	ElemNode (□)  — a regular XML element with a tag and optional text value.
//	                Its children are ProbNodes, which are mutually
//	                independent choice points.
//
// A document in which every ProbNode has exactly one PossNode with
// probability 1 is certain: it represents a single possible world.
//
// Nodes are immutable after construction. Subtrees may therefore be shared
// between possibilities; the package distinguishes the logical node count
// (each occurrence counted, the measure reported in the paper) from the
// physical node count (distinct nodes in memory).
package pxml

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Kind discriminates the three node kinds of the layered model.
type Kind uint8

const (
	// KindProb is a probability node (▽), a choice point.
	KindProb Kind = iota
	// KindPoss is a possibility node (○), one alternative of a choice point.
	KindPoss
	// KindElem is a regular XML element node (□).
	KindElem
)

// String returns the conventional symbol and name of the kind.
func (k Kind) String() string {
	switch k {
	case KindProb:
		return "prob"
	case KindPoss:
		return "poss"
	case KindElem:
		return "elem"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ProbEpsilon is the tolerance used when checking that sibling possibility
// probabilities sum to one and when comparing probabilities for equality.
const ProbEpsilon = 1e-6

// Node is a node of a probabilistic XML tree. The zero value is not useful;
// use NewElem, NewLeaf, NewProb, NewPoss or the builder helpers.
//
// Nodes must be treated as immutable once they are reachable from a Tree.
// All algorithms in this module rely on that to share subtrees freely.
type Node struct {
	kind Kind
	tag  string  // KindElem only: the element name
	text string  // KindElem only: text content (leaf value)
	prob float64 // KindPoss only: the probability of this alternative
	kids []*Node

	// summary caches the subtree's static summary (structural digest,
	// world count, descendant tag set). It is computed lazily on first
	// use; see Summary. Immutability of the node makes the cached value
	// valid forever.
	summary atomic.Pointer[Summary]

	// normalized caches a proven normalization fixpoint: it is set once
	// Normalize has returned this very node as its own canonical form.
	// Normalization is a pure function of the (immutable) structure, so
	// the flag is valid forever and lets later Normalize calls skip
	// entire already-canonical subtrees — the delta-integration property
	// that makes ingesting a small source cost time proportional to what
	// it touches instead of to the accumulated tree.
	normalized atomic.Bool
}

// Kind reports the node kind.
func (n *Node) Kind() Kind { return n.kind }

// Tag returns the element name. It is empty for non-element nodes.
func (n *Node) Tag() string { return n.tag }

// Text returns the element text value. It is empty for non-element nodes
// and for non-leaf elements.
func (n *Node) Text() string { return n.text }

// Prob returns the probability of a possibility node. It returns 1 for
// nodes of other kinds so that path-probability products are convenient.
func (n *Node) Prob() float64 {
	if n.kind == KindPoss {
		return n.prob
	}
	return 1
}

// Children returns the node's children. The returned slice must not be
// modified.
func (n *Node) Children() []*Node { return n.kids }

// NumChildren reports the number of children.
func (n *Node) NumChildren() int { return len(n.kids) }

// Child returns the i-th child.
func (n *Node) Child(i int) *Node { return n.kids[i] }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.kids) == 0 }

// NewElem constructs an element node with the given tag, text value and
// probability-node children. It panics if any child is not a ProbNode;
// layering violations are programming errors, not data errors.
func NewElem(tag, text string, kids ...*Node) *Node {
	for _, k := range kids {
		if k == nil || k.kind != KindProb {
			panic(fmt.Sprintf("pxml: element %q child must be a prob node, got %v", tag, kindOf(k)))
		}
	}
	return &Node{kind: KindElem, tag: tag, text: text, kids: kids}
}

// NewLeaf constructs a leaf element carrying a text value.
func NewLeaf(tag, text string) *Node {
	return &Node{kind: KindElem, tag: tag, text: text}
}

// NewProb constructs a probability node from its possibility alternatives.
// It panics if any child is not a PossNode or if there are no alternatives.
func NewProb(poss ...*Node) *Node {
	if len(poss) == 0 {
		panic("pxml: prob node needs at least one possibility")
	}
	for _, p := range poss {
		if p == nil || p.kind != KindPoss {
			panic(fmt.Sprintf("pxml: prob node child must be a poss node, got %v", kindOf(p)))
		}
	}
	return &Node{kind: KindProb, kids: poss}
}

// NewPoss constructs a possibility node with probability p and the given
// element children. An empty child list is legal: it represents the
// alternative in which none of the elements exist. It panics on
// probabilities outside (0, 1+ProbEpsilon] or non-element children.
func NewPoss(p float64, elems ...*Node) *Node {
	if math.IsNaN(p) || p <= 0 || p > 1+ProbEpsilon {
		panic(fmt.Sprintf("pxml: possibility probability %g out of range (0,1]", p))
	}
	if p > 1 {
		p = 1
	}
	for _, e := range elems {
		if e == nil || e.kind != KindElem {
			panic(fmt.Sprintf("pxml: poss node child must be an element, got %v", kindOf(e)))
		}
	}
	return &Node{kind: KindPoss, prob: p, kids: elems}
}

// Certain wraps element nodes into the canonical certain choice point:
// a ProbNode with a single PossNode of probability 1.
func Certain(elems ...*Node) *Node {
	return NewProb(NewPoss(1, elems...))
}

func kindOf(n *Node) string {
	if n == nil {
		return "nil"
	}
	return n.kind.String()
}

// Tree is a probabilistic XML document: a ProbNode root.
type Tree struct {
	root *Node
}

// NewTree wraps a root node into a Tree. The root must be a ProbNode;
// use Certain to wrap a plain element.
func NewTree(root *Node) (*Tree, error) {
	if root == nil {
		return nil, fmt.Errorf("pxml: nil root")
	}
	if root.kind != KindProb {
		return nil, fmt.Errorf("pxml: tree root must be a prob node, got %v", root.kind)
	}
	return &Tree{root: root}, nil
}

// MustTree is NewTree that panics on error; intended for tests and
// literals whose validity is statically evident.
func MustTree(root *Node) *Tree {
	t, err := NewTree(root)
	if err != nil {
		panic(err)
	}
	return t
}

// CertainTree builds a certain single-world document from a plain element.
func CertainTree(rootElem *Node) *Tree {
	return MustTree(Certain(rootElem))
}

// Root returns the root ProbNode of the document.
func (t *Tree) Root() *Node { return t.root }

// RootElements returns the element children of the root choice point of a
// certain tree, i.e. the document element(s). It returns nil if the root
// choice point has more than one alternative.
func (t *Tree) RootElements() []*Node {
	if len(t.root.kids) != 1 {
		return nil
	}
	return t.root.kids[0].kids
}

// IsCertain reports whether the document represents exactly one possible
// world: every reachable ProbNode has a single alternative.
func (t *Tree) IsCertain() bool {
	certain := true
	WalkUnique(t.root, func(n *Node) bool {
		if n.kind == KindProb && len(n.kids) != 1 {
			certain = false
			return false
		}
		return true
	})
	return certain
}

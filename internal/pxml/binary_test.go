package pxml

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/codec"
)

func binaryFixture() *Tree {
	movie := func(title, year string) *Node {
		return NewElem("movie", "",
			Certain(NewLeaf("title", title)),
			Certain(NewLeaf("year", year)),
		)
	}
	cat := NewElem("catalog", "",
		Certain(movie("Jaws", "1975")),
		NewProb(
			NewPoss(0.25, movie("Jaws 2", "1978")),
			NewPoss(0.5, movie("Jaws II", "1978")),
			NewPoss(0.25),
		),
	)
	return CertainTree(cat)
}

func TestBinaryRoundTrip(t *testing.T) {
	trees := map[string]*Tree{
		"fixture": binaryFixture(),
		"leaf":    CertainTree(NewLeaf("a", "x")),
		"empty":   MustTree(NewProb(NewPoss(1))),
	}
	for name, tr := range trees {
		data := tr.AppendBinary(nil)
		got, err := DecodeArena(data)
		if err != nil {
			t.Fatalf("%s: DecodeArena: %v", name, err)
		}
		if !Equal(tr.Root(), got.Root()) {
			t.Fatalf("%s: round trip not Equal", name)
		}
		if tr.Digest() != got.Digest() {
			t.Fatalf("%s: digest changed across round trip", name)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: decoded tree invalid: %v", name, err)
		}
		if tr.WorldCount().Cmp(got.WorldCount()) != 0 {
			t.Fatalf("%s: world count changed across round trip", name)
		}
	}
}

func TestBinaryExactProbabilities(t *testing.T) {
	// Binary round trips carry the float bits exactly — including values
	// that have no short decimal form.
	p := 1.0 / 3.0
	tr := MustTree(NewProb(
		NewPoss(p, NewLeaf("a", "")),
		NewPoss(p, NewLeaf("b", "")),
		NewPoss(1-2*p, NewLeaf("c", "")),
	))
	got, err := DecodeArena(tr.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Root().Child(0).Prob() != p {
		t.Fatalf("probability %v not bit-exact, got %v", p, got.Root().Child(0).Prob())
	}
}

func TestBinaryPreservesSharing(t *testing.T) {
	shared := Certain(NewLeaf("leaf", "v"))
	tr := CertainTree(NewElem("root", "",
		Certain(NewElem("a", "", shared)),
		Certain(NewElem("b", "", shared)),
		shared,
	))
	got, err := DecodeArena(tr.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if w, g := tr.PhysicalNodeCount(), got.PhysicalNodeCount(); w != g {
		t.Fatalf("physical nodes %d, want %d (sharing lost)", g, w)
	}
	if w, g := tr.NodeCount(), got.NodeCount(); w != g {
		t.Fatalf("logical nodes %d, want %d", g, w)
	}
}

func TestBinaryDeterministic(t *testing.T) {
	a := binaryFixture().AppendBinary(nil)
	b := binaryFixture().AppendBinary(nil)
	if !bytes.Equal(a, b) {
		t.Fatal("equal trees encode differently")
	}
}

func TestDecodeArenaRejectsCorruption(t *testing.T) {
	valid := binaryFixture().AppendBinary(nil)
	t.Run("truncation", func(t *testing.T) {
		for cut := 0; cut < len(valid); cut++ {
			if _, err := DecodeArena(valid[:cut]); err == nil {
				t.Fatalf("truncation at %d of %d accepted", cut, len(valid))
			}
		}
	})
	t.Run("bitflips", func(t *testing.T) {
		for i := range valid {
			mut := append([]byte(nil), valid...)
			mut[i] ^= 0x40
			tr, err := DecodeArena(mut)
			if err != nil {
				continue
			}
			// A flip the decoder accepts must still decode to a valid
			// document whose digest matches its own trailer; the digest
			// check makes silent structural drift impossible.
			if err := tr.Validate(); err != nil {
				t.Fatalf("bit flip at %d decoded to invalid tree: %v", i, err)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := DecodeArena(append(append([]byte(nil), valid...), 0)); err == nil {
			t.Fatal("trailing byte accepted")
		}
	})
	t.Run("digest mismatch", func(t *testing.T) {
		mut := append([]byte(nil), valid...)
		mut[len(mut)-1] ^= 0xFF
		if _, err := DecodeArena(mut); err == nil {
			t.Fatal("forged digest accepted")
		}
	})
}

func TestDecodeArenaRejectsInvalidStructure(t *testing.T) {
	// Hand-built payloads: version, string table, node count, records,
	// digest trailer (content irrelevant — the error must come earlier).
	build := func(strs []string, nodes ...[]byte) []byte {
		var st codec.StringTable
		for _, s := range strs {
			st.Intern(s)
		}
		p := []byte{BinaryVersion}
		p = st.AppendTo(p)
		p = codec.AppendUvarint(p, uint64(len(nodes)))
		for _, n := range nodes {
			p = append(p, n...)
		}
		return codec.AppendUint64(p, 0)
	}
	poss := func(p float64) []byte { // poss with no kids
		b := []byte{byte(KindPoss)}
		b = codec.AppendFloat64(b, p)
		return append(b, 0)
	}
	possHalf := func() []byte { return poss(0.5) }
	cases := map[string][]byte{
		"empty arena":     build(nil),
		"root not prob":   build([]string{"a"}, []byte{byte(KindElem), 0, 0, 0}),
		"unknown kind":    build(nil, []byte{7, 0}),
		"prob no kids":    build(nil, []byte{byte(KindProb), 0}),
		"forward child":   build(nil, append([]byte{byte(KindProb), 1}, 5)),
		"self child":      build(nil, append([]byte{byte(KindProb), 1}, 0)),
		"bad layering":    build(nil, possHalf(), []byte{byte(KindPoss) /*prob bits*/, 0, 0, 0, 0, 0, 0, 0xE0, 0x3F, 1, 0}),
		"prob sum":        build(nil, possHalf(), []byte{byte(KindProb), 1, 0}),
		"orphan node":     build(nil, poss(1), poss(1), []byte{byte(KindProb), 1, 0}),
		"empty tag":       build([]string{""}, []byte{byte(KindElem), 0, 0, 0}),
		"string overflow": build([]string{"a"}, []byte{byte(KindElem), 9, 0, 0}),
		"bad version":     {99},
		"forged count":    append([]byte{BinaryVersion, 0}, codec.AppendUvarint(nil, 1<<40)...),
	}
	for name, data := range cases {
		if _, err := DecodeArena(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecodeArenaRejectsAmplifiedDAGs(t *testing.T) {
	// elem(i) -> prob -> {poss, poss} -> elem(i-1): every level of the
	// ladder doubles both the logical node count and the world count, so
	// a few KB of input implies ~2^4096 worlds. The saturating bottom-up
	// guards must reject it before any Summary (big.Int) is computed.
	var st codec.StringTable
	st.Intern("a")
	var body []byte
	count := uint64(0)
	emit := func(rec []byte) uint64 {
		body = append(body, rec...)
		count++
		return count - 1
	}
	poss := func(child uint64) []byte {
		b := codec.AppendFloat64([]byte{byte(KindPoss)}, 0.5)
		b = append(b, 1)
		return codec.AppendUvarint(b, child)
	}
	cur := emit([]byte{byte(KindElem), 0, 0, 0})
	const levels = 4096
	for l := 0; l < levels; l++ {
		a := emit(poss(cur))
		b := emit(poss(cur))
		pr := codec.AppendUvarint([]byte{byte(KindProb), 2}, a)
		pr = codec.AppendUvarint(pr, b)
		top := emit(pr)
		if l == levels-1 {
			break
		}
		el := codec.AppendUvarint([]byte{byte(KindElem), 0, 0, 1}, top)
		cur = emit(el)
	}
	p := []byte{BinaryVersion}
	p = st.AppendTo(p)
	p = codec.AppendUvarint(p, count)
	p = append(p, body...)
	p = codec.AppendUint64(p, 0)
	_, err := DecodeArena(p)
	if err == nil {
		t.Fatal("amplified DAG accepted")
	}
	if !errors.Is(err, codec.ErrInvalid) {
		t.Fatalf("unexpected error class: %v", err)
	}
}

func TestBinaryNearOneProbabilityClamped(t *testing.T) {
	var body []byte
	body = append(body, byte(KindElem), 0, 0, 0)
	poss := codec.AppendFloat64([]byte{byte(KindPoss)}, 1+ProbEpsilon/2)
	poss = append(poss, 1, 0)
	body = append(body, poss...)
	body = append(body, byte(KindProb), 1, 1)
	var st codec.StringTable
	st.Intern("a")
	p := []byte{BinaryVersion}
	p = st.AppendTo(p)
	p = codec.AppendUvarint(p, 3)
	p = append(p, body...)
	// Digest of the equivalent clamped tree (tag and text both use
	// string-table entry 0, "a").
	want := CertainTree(NewLeaf("a", "a"))
	p = codec.AppendUint64(p, want.Digest())
	got, err := DecodeArena(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Root().Child(0).Prob() != 1 {
		t.Fatalf("probability %g not clamped to 1", got.Root().Child(0).Prob())
	}
}

func FuzzDecodeArena(f *testing.F) {
	f.Add(binaryFixture().AppendBinary(nil))
	f.Add(CertainTree(NewLeaf("a", "x")).AppendBinary(nil))
	f.Add(MustTree(NewProb(NewPoss(1))).AppendBinary(nil))
	f.Add([]byte{BinaryVersion, 0, 1, byte(KindProb), 1, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeArena(data)
		if err != nil {
			return
		}
		// Anything accepted must be a valid document that round-trips.
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoded tree invalid: %v", err)
		}
		again, err := DecodeArena(tr.AppendBinary(nil))
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if !Equal(tr.Root(), again.Root()) {
			t.Fatal("re-encode round trip not Equal")
		}
		if math.IsNaN(tr.Root().Prob()) {
			t.Fatal("NaN probability survived")
		}
	})
}

package pxml

import (
	"strings"
	"testing"
)

// These tests build malformed trees directly (bypassing the constructors,
// which reject them) to exercise the validator.

func rawNode(kind Kind, tag, text string, prob float64, kids ...*Node) *Node {
	return &Node{kind: kind, tag: tag, text: text, prob: prob, kids: kids}
}

func TestValidateAcceptsValid(t *testing.T) {
	tr := CertainTree(NewElem("movie", "",
		Certain(NewLeaf("title", "Jaws")),
		NewProb(NewPoss(0.4, NewLeaf("year", "1975")), NewPoss(0.6, NewLeaf("year", "1976"))),
	))
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	leaf := NewLeaf("a", "")
	cases := []struct {
		name string
		tree *Tree
		want string
	}{
		{"nil tree", nil, "nil tree"},
		{"elem root", &Tree{root: rawNode(KindElem, "a", "", 0)}, "root must be prob"},
		{"prob no poss", &Tree{root: rawNode(KindProb, "", "", 0)}, "without possibilities"},
		{"prob child elem", &Tree{root: rawNode(KindProb, "", "", 0, leaf)}, "must be poss"},
		{"prob sums wrong", &Tree{root: rawNode(KindProb, "", "", 0,
			rawNode(KindPoss, "", "", 0.5, leaf), rawNode(KindPoss, "", "", 0.2))}, "sum to"},
		{"poss prob zero", &Tree{root: rawNode(KindProb, "", "", 0,
			rawNode(KindPoss, "", "", 0, leaf), rawNode(KindPoss, "", "", 1))}, "out of range"},
		{"poss child prob", &Tree{root: rawNode(KindProb, "", "", 0,
			rawNode(KindPoss, "", "", 1, rawNode(KindProb, "", "", 0, rawNode(KindPoss, "", "", 1))))}, "must be element"},
		{"elem empty tag", &Tree{root: rawNode(KindProb, "", "", 0,
			rawNode(KindPoss, "", "", 1, rawNode(KindElem, "", "", 0)))}, "empty tag"},
		{"elem child poss", &Tree{root: rawNode(KindProb, "", "", 0,
			rawNode(KindPoss, "", "", 1, rawNode(KindElem, "a", "", 0, rawNode(KindPoss, "", "", 1))))}, "must be prob"},
		{"unknown kind", &Tree{root: rawNode(KindProb, "", "", 0,
			rawNode(KindPoss, "", "", 1, rawNode(Kind(9), "a", "", 0)))}, "must be element"},
		{"nil child", &Tree{root: rawNode(KindProb, "", "", 0, nil)}, "must be poss"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.tree.Validate()
			if err == nil {
				t.Fatalf("expected validation error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err.Error(), tc.want)
			}
		})
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	elem := rawNode(KindElem, "a", "", 0)
	poss := rawNode(KindPoss, "", "", 1, elem)
	prob := rawNode(KindProb, "", "", 0, poss)
	elem.kids = []*Node{prob} // cycle: elem -> prob -> poss -> elem
	tr := &Tree{root: prob}
	err := tr.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestValidateAllowsSharing(t *testing.T) {
	shared := NewLeaf("x", "v")
	tr := CertainTree(NewElem("r", "",
		NewProb(NewPoss(0.5, shared), NewPoss(0.5, shared, shared)),
		Certain(shared),
	))
	if err := tr.Validate(); err != nil {
		t.Fatalf("sharing rejected: %v", err)
	}
}

func TestValidationErrorPathMentionsLocation(t *testing.T) {
	bad := &Tree{root: rawNode(KindProb, "", "", 0,
		rawNode(KindPoss, "", "", 1,
			rawNode(KindElem, "movie", "", 0,
				rawNode(KindProb, "", "", 0))))} // inner prob without possibilities
	err := bad.Validate()
	if err == nil {
		t.Fatalf("expected error")
	}
	ve, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("error type %T, want *ValidationError", err)
	}
	if !strings.Contains(ve.Path, "movie") {
		t.Fatalf("path %q should mention the movie element", ve.Path)
	}
}

package pxml_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pxml"
	"repro/internal/pxmltest"
)

func TestNormalizeMergesDuplicateAlternatives(t *testing.T) {
	dup := func() *pxml.Node { return pxml.NewLeaf("tel", "1111") }
	prob := pxml.NewProb(
		pxml.NewPoss(0.3, dup()),
		pxml.NewPoss(0.2, dup()),
		pxml.NewPoss(0.5, pxml.NewLeaf("tel", "2222")),
	)
	tr := pxml.CertainTree(pxml.NewElem("person", "", prob))
	nt, err := tr.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	person := nt.RootElements()[0]
	choice := person.Child(0)
	if choice.NumChildren() != 2 {
		t.Fatalf("alternatives = %d, want 2 after merging\n%s", choice.NumChildren(), nt)
	}
	// Merged duplicate gets 0.5, sorted order is deterministic.
	p0, p1 := choice.Child(0).Prob(), choice.Child(1).Prob()
	if math.Abs(p0-0.5) > 1e-9 || math.Abs(p1-0.5) > 1e-9 {
		t.Fatalf("probs = %v, %v, want 0.5 each", p0, p1)
	}
}

func TestNormalizeDropsEpsilonAlternativesAndRescales(t *testing.T) {
	prob := pxml.NewProb(
		pxml.NewPoss(1e-9, pxml.NewLeaf("tel", "0000")),
		pxml.NewPoss(0.6, pxml.NewLeaf("tel", "1111")),
		pxml.NewPoss(0.4-1e-9, pxml.NewLeaf("tel", "2222")),
	)
	tr := pxml.CertainTree(pxml.NewElem("person", "", prob))
	nt := tr.MustNormalize()
	choice := nt.RootElements()[0].Child(0)
	if choice.NumChildren() != 2 {
		t.Fatalf("alternatives = %d, want 2", choice.NumChildren())
	}
	// Rescaling may reuse original nodes whose probabilities are within
	// ProbEpsilon of the rescaled value, so check against the model
	// tolerance rather than float precision.
	sum := choice.Child(0).Prob() + choice.Child(1).Prob()
	if math.Abs(sum-1) > 2*pxml.ProbEpsilon {
		t.Fatalf("probabilities sum to %v after rescale", sum)
	}
	if err := nt.Validate(); err != nil {
		t.Fatalf("normalized tree invalid: %v", err)
	}
}

func TestNormalizeIdempotentAndSharingPreserving(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	n1 := tr.MustNormalize()
	n2 := n1.MustNormalize()
	if !pxml.Equal(n1.Root(), n2.Root()) {
		t.Fatalf("normalize not idempotent")
	}
	// An already-canonical tree should be returned unchanged (same pointers).
	if n1.Root() != n2.Root() {
		t.Fatalf("idempotent normalize should reuse nodes")
	}
}

func TestNormalizeSingleAlternativeSnapsToOne(t *testing.T) {
	prob := pxml.NewProb(
		pxml.NewPoss(0.5, pxml.NewLeaf("tel", "1111")),
		pxml.NewPoss(0.5, pxml.NewLeaf("tel", "1111")),
	)
	tr := pxml.CertainTree(pxml.NewElem("p", "", prob))
	nt := tr.MustNormalize()
	choice := nt.RootElements()[0].Child(0)
	if choice.NumChildren() != 1 {
		t.Fatalf("duplicates should merge to one alternative")
	}
	if choice.Child(0).Prob() != 1 {
		t.Fatalf("single alternative prob = %v, want exactly 1", choice.Child(0).Prob())
	}
	if !nt.IsCertain() {
		t.Fatalf("tree should be certain after merging identical alternatives")
	}
}

func TestNormalizeOrdersByDescendingProbability(t *testing.T) {
	prob := pxml.NewProb(
		pxml.NewPoss(0.1, pxml.NewLeaf("v", "low")),
		pxml.NewPoss(0.7, pxml.NewLeaf("v", "high")),
		pxml.NewPoss(0.2, pxml.NewLeaf("v", "mid")),
	)
	nt := pxml.CertainTree(pxml.NewElem("r", "", prob)).MustNormalize()
	choice := nt.RootElements()[0].Child(0)
	var last float64 = 2
	for i := 0; i < choice.NumChildren(); i++ {
		p := choice.Child(i).Prob()
		if p > last {
			t.Fatalf("alternatives not sorted by descending probability")
		}
		last = p
	}
	if choice.Child(0).Child(0).Text() != "high" {
		t.Fatalf("highest-probability alternative should come first")
	}
}

func TestNormalizeQuickProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := pxmltest.RandomTree(rng, pxmltest.DefaultGenConfig())
		nt, err := tr.Normalize()
		if err != nil {
			return false
		}
		if err := nt.Validate(); err != nil {
			return false
		}
		// Node count never grows, and world count never grows (merging
		// duplicates can only shrink both).
		if nt.NodeCount() > tr.NodeCount() {
			return false
		}
		if nt.WorldCount().Cmp(tr.WorldCount()) > 0 {
			return false
		}
		// Idempotence.
		nt2, err := nt.Normalize()
		return err == nil && pxml.Equal(nt.Root(), nt2.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestNormalizeFixpointFlagSoundness: the cached fixpoint flag is only
// set on nodes proven unchanged by a full walk, so re-normalizing the
// ORIGINAL (non-canonical) tree after a first pass flagged its shared
// canonical subtrees must still produce the same canonical result, and a
// canonical tree must short-circuit wholesale to the same root.
func TestNormalizeFixpointFlagSoundness(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	n1 := tr.MustNormalize()
	n2 := tr.MustNormalize() // second pass over the un-normalized input
	if !pxml.Equal(n1.Root(), n2.Root()) {
		t.Fatal("re-normalizing the original tree diverged")
	}
	if n1.WorldCount().Cmp(n2.WorldCount()) != 0 {
		t.Fatalf("world counts diverged: %s vs %s", n1.WorldCount(), n2.WorldCount())
	}
	if n1.MustNormalize().Root() != n1.Root() {
		t.Fatal("canonical tree did not short-circuit to itself")
	}
}

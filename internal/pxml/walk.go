package pxml

// Walk visits every node occurrence in depth-first pre-order. Shared
// subtrees are visited once per occurrence. The visit function returns
// false to skip the node's subtree.
func Walk(n *Node, visit func(*Node) bool) {
	if n == nil {
		return
	}
	if !visit(n) {
		return
	}
	for _, k := range n.kids {
		Walk(k, visit)
	}
}

// WalkUnique visits every distinct node reachable from n exactly once, in
// depth-first pre-order of first discovery. Returning false from visit
// skips the node's subtree (the subtree may still be reached via another
// occurrence). Use this for traversals whose cost must stay proportional to
// physical size even on heavily shared documents.
func WalkUnique(n *Node, visit func(*Node) bool) {
	seen := make(map[*Node]bool)
	var rec func(*Node)
	rec = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		if !visit(n) {
			return
		}
		for _, k := range n.kids {
			rec(k)
		}
	}
	rec(n)
}

// ElementChildren returns the element grandchildren of an element node
// that exist with certainty, i.e. elements under single-alternative
// probability children. Elements under genuine choice points are skipped.
func ElementChildren(elem *Node) []*Node {
	if elem.kind != KindElem {
		return nil
	}
	var out []*Node
	for _, p := range elem.kids {
		if len(p.kids) == 1 {
			out = append(out, p.kids[0].kids...)
		}
	}
	return out
}

// CertainChild returns the unique certainly-existing child element with the
// given tag, or nil if there is none or it is uncertain.
func CertainChild(elem *Node, tag string) *Node {
	var found *Node
	for _, c := range ElementChildren(elem) {
		if c.tag == tag {
			if found != nil {
				return nil
			}
			found = c
		}
	}
	return found
}

// CertainText returns the text of the unique certainly-existing child leaf
// with the given tag, or "" if absent or uncertain.
func CertainText(elem *Node, tag string) string {
	if c := CertainChild(elem, tag); c != nil {
		return c.text
	}
	return ""
}

// CertainTexts returns the texts of all certainly-existing children with
// the given tag, in document order.
func CertainTexts(elem *Node, tag string) []string {
	var out []string
	for _, c := range ElementChildren(elem) {
		if c.tag == tag {
			out = append(out, c.text)
		}
	}
	return out
}

package pxml

import (
	"math/big"
	"sync"
	"testing"
)

func summaryFixture() *Tree {
	movie := func(title, year string) *Node {
		return NewElem("movie", "",
			Certain(NewLeaf("title", title)),
			Certain(NewLeaf("year", year)),
		)
	}
	cat := NewElem("catalog", "",
		Certain(movie("Jaws", "1975")),
		NewProb(
			NewPoss(0.5, movie("Jaws 2", "1978")),
			NewPoss(0.5, movie("Jaws II", "1978")),
		),
	)
	return CertainTree(cat)
}

func TestSummaryDigestMatchesHash(t *testing.T) {
	tr := summaryFixture()
	if got, want := tr.Digest(), Hash(tr.Root()); got != want {
		t.Fatalf("tree digest %#x != Hash %#x", got, want)
	}
	WalkUnique(tr.Root(), func(n *Node) bool {
		if got, want := n.Summary().Digest, Hash(n); got != want {
			t.Errorf("node %v digest %#x != Hash %#x", n.Kind(), got, want)
		}
		return true
	})
	// Equal documents built independently share the digest.
	other := summaryFixture()
	if tr.Digest() != other.Digest() {
		t.Fatalf("equal trees with different digests")
	}
	// A different document has a different digest.
	changed := CertainTree(NewElem("catalog", "", Certain(NewLeaf("title", "Alien"))))
	if changed.Digest() == tr.Digest() {
		t.Fatalf("different trees share a digest")
	}
}

func TestSummaryWorldsMatchesWorldCount(t *testing.T) {
	tr := summaryFixture()
	if got := tr.WorldCount(); got.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("world count = %s, want 2", got)
	}
	// The returned count is a private copy: mutating it must not corrupt
	// the cached summary.
	tr.WorldCount().SetInt64(99)
	if got := tr.WorldCount(); got.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("world count after caller mutation = %s, want 2", got)
	}
}

func TestSummaryTags(t *testing.T) {
	tr := summaryFixture()
	tags := tr.Summary().Tags
	for _, want := range []string{"catalog", "movie", "title", "year"} {
		if !tags.Has(want) {
			t.Fatalf("tag set %v missing %q", tags.Tags(), want)
		}
	}
	if tags.Has("director") {
		t.Fatalf("tag set claims absent tag")
	}
	if tags.Len() != 4 {
		t.Fatalf("tag set len = %d, want 4", tags.Len())
	}
	// A leaf's set contains exactly its own tag.
	leaf := NewLeaf("title", "x")
	if s := leaf.Summary().Tags; s.Len() != 1 || !s.Has("title") {
		t.Fatalf("leaf tag set = %v", s.Tags())
	}
}

func TestSummaryConcurrent(t *testing.T) {
	tr := summaryFixture()
	var wg sync.WaitGroup
	digests := make([]uint64, 8)
	for i := range digests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			digests[i] = tr.Digest()
		}(i)
	}
	wg.Wait()
	for _, d := range digests {
		if d != digests[0] {
			t.Fatalf("racing summary computations disagree")
		}
	}
}

package pxml_test

import (
	"strings"
	"testing"

	"repro/internal/pxml"
	"repro/internal/pxmltest"
)

func TestNodeConstructorsAndAccessors(t *testing.T) {
	leaf := pxml.NewLeaf("title", "Jaws")
	if leaf.Kind() != pxml.KindElem {
		t.Fatalf("leaf kind = %v, want elem", leaf.Kind())
	}
	if leaf.Tag() != "title" || leaf.Text() != "Jaws" {
		t.Fatalf("leaf = %q/%q", leaf.Tag(), leaf.Text())
	}
	if !leaf.IsLeaf() || leaf.NumChildren() != 0 {
		t.Fatalf("leaf should have no children")
	}
	if leaf.Prob() != 1 {
		t.Fatalf("element Prob() = %v, want 1", leaf.Prob())
	}

	poss := pxml.NewPoss(0.25, leaf)
	if poss.Kind() != pxml.KindPoss || poss.Prob() != 0.25 {
		t.Fatalf("poss = %v p=%v", poss.Kind(), poss.Prob())
	}
	prob := pxml.NewProb(pxml.NewPoss(0.25, leaf), pxml.NewPoss(0.75))
	if prob.Kind() != pxml.KindProb || prob.NumChildren() != 2 {
		t.Fatalf("prob node malformed")
	}
	if prob.Child(0) != prob.Children()[0] {
		t.Fatalf("Child and Children disagree")
	}

	elem := pxml.NewElem("movie", "", prob)
	if elem.NumChildren() != 1 || elem.Child(0) != prob {
		t.Fatalf("element children wrong")
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"elem child not prob", func() { pxml.NewElem("a", "", pxml.NewLeaf("b", "")) }},
		{"elem nil child", func() { pxml.NewElem("a", "", nil) }},
		{"prob empty", func() { pxml.NewProb() }},
		{"prob child not poss", func() { pxml.NewProb(pxml.NewLeaf("a", "")) }},
		{"poss prob zero", func() { pxml.NewPoss(0, pxml.NewLeaf("a", "")) }},
		{"poss prob negative", func() { pxml.NewPoss(-0.5) }},
		{"poss prob above one", func() { pxml.NewPoss(1.5) }},
		{"poss child not elem", func() { pxml.NewPoss(1, pxml.NewPoss(1)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestPossProbClampNearOne(t *testing.T) {
	p := pxml.NewPoss(1 + 1e-9)
	if p.Prob() != 1 {
		t.Fatalf("prob = %v, want clamped to 1", p.Prob())
	}
}

func TestNewTree(t *testing.T) {
	if _, err := pxml.NewTree(nil); err == nil {
		t.Fatalf("nil root should error")
	}
	if _, err := pxml.NewTree(pxml.NewLeaf("a", "")); err == nil {
		t.Fatalf("element root should error")
	}
	tr, err := pxml.NewTree(pxml.Certain(pxml.NewLeaf("a", "")))
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	if tr.Root().Kind() != pxml.KindProb {
		t.Fatalf("root kind = %v", tr.Root().Kind())
	}
}

func TestMustTreePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	pxml.MustTree(pxml.NewLeaf("a", ""))
}

func TestCertainTreeAndRootElements(t *testing.T) {
	doc := pxml.NewElem("addressbook", "", pxml.Certain(pxml.NewLeaf("person", "x")))
	tr := pxml.CertainTree(doc)
	roots := tr.RootElements()
	if len(roots) != 1 || roots[0] != doc {
		t.Fatalf("RootElements = %v", roots)
	}
	if !tr.IsCertain() {
		t.Fatalf("certain tree reported uncertain")
	}
}

func TestIsCertain(t *testing.T) {
	fig2 := pxmltest.Fig2Tree()
	if fig2.IsCertain() {
		t.Fatalf("figure-2 tree should be uncertain")
	}
	if fig2.RootElements() == nil {
		t.Fatalf("figure-2 root choice is trivial; RootElements should work")
	}
}

func TestKindString(t *testing.T) {
	if pxml.KindProb.String() != "prob" || pxml.KindPoss.String() != "poss" || pxml.KindElem.String() != "elem" {
		t.Fatalf("kind strings wrong")
	}
	if !strings.Contains(pxml.Kind(42).String(), "42") {
		t.Fatalf("unknown kind string should include the value")
	}
}

func TestSketchOutput(t *testing.T) {
	s := pxmltest.Fig2Tree().String()
	for _, want := range []string{"addressbook", "person", "1111", "2222", "▽", "○"} {
		if !strings.Contains(s, want) {
			t.Fatalf("sketch missing %q:\n%s", want, s)
		}
	}
	if got := pxml.Sketch(pxml.NewLeaf("nm", "John")); !strings.Contains(got, `"John"`) {
		t.Fatalf("Sketch leaf = %q", got)
	}
}

func TestElementChildrenHelpers(t *testing.T) {
	person := pxml.NewElem("person", "",
		pxml.Certain(pxml.NewLeaf("nm", "John")),
		pxml.NewProb(
			pxml.NewPoss(0.5, pxml.NewLeaf("tel", "1111")),
			pxml.NewPoss(0.5, pxml.NewLeaf("tel", "2222")),
		),
		pxml.Certain(pxml.NewLeaf("email", "j@x"), pxml.NewLeaf("email", "j@y")),
	)
	kids := pxml.ElementChildren(person)
	if len(kids) != 3 { // nm + two emails; the uncertain tel is skipped
		t.Fatalf("ElementChildren = %d, want 3", len(kids))
	}
	if got := pxml.CertainText(person, "nm"); got != "John" {
		t.Fatalf("CertainText(nm) = %q", got)
	}
	if got := pxml.CertainText(person, "tel"); got != "" {
		t.Fatalf("CertainText(tel) = %q, want empty for uncertain field", got)
	}
	if got := pxml.CertainChild(person, "email"); got != nil {
		t.Fatalf("CertainChild(email) should be nil for multiple occurrences")
	}
	if got := pxml.CertainTexts(person, "email"); len(got) != 2 || got[0] != "j@x" || got[1] != "j@y" {
		t.Fatalf("CertainTexts(email) = %v", got)
	}
	if pxml.ElementChildren(pxml.Certain(pxml.NewLeaf("a", ""))) != nil {
		t.Fatalf("ElementChildren of non-element should be nil")
	}
}

func TestWalkOrderAndSkip(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	var kinds []pxml.Kind
	pxml.Walk(tr.Root(), func(n *pxml.Node) bool {
		kinds = append(kinds, n.Kind())
		return true
	})
	if kinds[0] != pxml.KindProb || kinds[1] != pxml.KindPoss || kinds[2] != pxml.KindElem {
		t.Fatalf("walk order start = %v", kinds[:3])
	}
	// Skipping the root visits nothing else.
	count := 0
	pxml.Walk(tr.Root(), func(n *pxml.Node) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("walk with skip visited %d nodes", count)
	}
	pxml.Walk(nil, func(*pxml.Node) bool { t.Fatal("nil walk should not visit"); return true })
}

func TestWalkUniqueVisitsSharedOnce(t *testing.T) {
	shared := pxml.NewLeaf("x", "v")
	elem := pxml.NewElem("r", "", pxml.Certain(shared), pxml.Certain(shared))
	visits := 0
	pxml.WalkUnique(elem, func(n *pxml.Node) bool {
		if n == shared {
			visits++
		}
		return true
	})
	if visits != 1 {
		t.Fatalf("shared node visited %d times, want 1", visits)
	}
	occurrences := 0
	pxml.Walk(elem, func(n *pxml.Node) bool {
		if n == shared {
			occurrences++
		}
		return true
	})
	if occurrences != 2 {
		t.Fatalf("shared node occurs %d times, want 2", occurrences)
	}
}

package pxml

import "math/big"

// Stats summarizes the size of a probabilistic document. Logical counts
// weigh shared subtrees once per occurrence — this is the "#nodes" measure
// reported in the paper, corresponding to a fully materialized document.
// Physical counts report distinct allocated nodes.
type Stats struct {
	LogicalNodes  int64 // all node occurrences (prob + poss + elem)
	LogicalProb   int64
	LogicalPoss   int64
	LogicalElem   int64
	PhysicalNodes int64 // distinct nodes in memory
	MaxDepth      int   // layers from root to deepest leaf
	Worlds        *big.Int
}

// CollectStats computes all size measures in one pass each.
func (t *Tree) CollectStats() Stats {
	s := Stats{Worlds: t.WorldCount()}
	counts := map[*Node][3]int64{} // per-occurrence (prob, poss, elem) of the subtree
	var rec func(n *Node) [3]int64
	rec = func(n *Node) [3]int64 {
		if c, ok := counts[n]; ok {
			return c
		}
		var c [3]int64
		c[n.kind] = 1
		for _, k := range n.kids {
			kc := rec(k)
			c[0] += kc[0]
			c[1] += kc[1]
			c[2] += kc[2]
		}
		counts[n] = c
		return c
	}
	c := rec(t.root)
	s.LogicalProb, s.LogicalPoss, s.LogicalElem = c[KindProb], c[KindPoss], c[KindElem]
	s.LogicalNodes = c[0] + c[1] + c[2]
	s.PhysicalNodes = int64(len(counts))
	s.MaxDepth = maxDepth(t.root, map[*Node]int{})
	return s
}

func maxDepth(n *Node, memo map[*Node]int) int {
	if d, ok := memo[n]; ok {
		return d
	}
	d := 1
	for _, k := range n.kids {
		if kd := maxDepth(k, memo) + 1; kd > d {
			d = kd
		}
	}
	memo[n] = d
	return d
}

// NodeCount returns the logical node count (each occurrence of a shared
// subtree counted separately), the paper's size measure.
func (t *Tree) NodeCount() int64 {
	memo := map[*Node]int64{}
	var rec func(n *Node) int64
	rec = func(n *Node) int64 {
		if c, ok := memo[n]; ok {
			return c
		}
		c := int64(1)
		for _, k := range n.kids {
			c += rec(k)
		}
		memo[n] = c
		return c
	}
	return rec(t.root)
}

// PhysicalNodeCount returns the number of distinct nodes in memory.
func (t *Tree) PhysicalNodeCount() int64 {
	var c int64
	WalkUnique(t.root, func(*Node) bool { c++; return true })
	return c
}

// WorldCount returns the exact number of possible worlds represented by
// the document. Choice points multiply across independent siblings and sum
// across alternatives, so the count can be astronomically large; hence the
// big.Int result. The count comes from the cached subtree summaries, so
// after the first call on a document it is O(1); the returned value is a
// private copy the caller may mutate.
func (t *Tree) WorldCount() *big.Int {
	return new(big.Int).Set(t.root.Summary().Worlds)
}

// ChoicePoints returns the number of genuine choice points: distinct
// ProbNodes with more than one alternative.
func (t *Tree) ChoicePoints() int {
	n := 0
	WalkUnique(t.root, func(nd *Node) bool {
		if nd.kind == KindProb && len(nd.kids) > 1 {
			n++
		}
		return true
	})
	return n
}

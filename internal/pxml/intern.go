package pxml

// Builder constructs probabilistic trees with hash-consing: structurally
// equal subtrees built through the same Builder are physically shared (one
// allocation, one pointer). The intern table is keyed on the structural
// digest (Hash) and verified with Equal, so sharing is exact up to
// ProbEpsilon on possibility probabilities — the same tolerance every
// other structural comparison in this package uses.
//
// A Builder is scoped: typical use is one Builder per decode or per
// construction pass, discarded afterwards. Builders are not safe for
// concurrent use; the nodes they return are (they are ordinary immutable
// nodes).
type Builder struct {
	table map[uint64][]*Node
	memo  map[*Node]*Node // deep-intern memo: original -> canonical
}

// NewBuilder creates an empty interning builder.
func NewBuilder() *Builder {
	return &Builder{
		table: make(map[uint64][]*Node),
		memo:  make(map[*Node]*Node),
	}
}

// Size reports the number of distinct nodes interned so far.
func (b *Builder) Size() int {
	n := 0
	for _, bucket := range b.table {
		n += len(bucket)
	}
	return n
}

// Intern returns the canonical node structurally equal to n, registering n
// as the canonical representative if none exists yet. Children are
// compared via Equal, which short-circuits on shared pointers, so interning
// bottom-up (children first) costs O(1) comparisons per node.
func (b *Builder) Intern(n *Node) *Node {
	if n == nil {
		return nil
	}
	h := n.Summary().Digest
	for _, c := range b.table[h] {
		if c == n || Equal(c, n) {
			return c
		}
	}
	b.table[h] = append(b.table[h], n)
	return n
}

// Elem constructs an interned element node (see NewElem).
func (b *Builder) Elem(tag, text string, kids ...*Node) *Node {
	return b.Intern(NewElem(tag, text, kids...))
}

// Leaf constructs an interned leaf element (see NewLeaf).
func (b *Builder) Leaf(tag, text string) *Node {
	return b.Intern(NewLeaf(tag, text))
}

// Prob constructs an interned probability node (see NewProb).
func (b *Builder) Prob(poss ...*Node) *Node {
	return b.Intern(NewProb(poss...))
}

// Poss constructs an interned possibility node (see NewPoss).
func (b *Builder) Poss(p float64, elems ...*Node) *Node {
	return b.Intern(NewPoss(p, elems...))
}

// Certain wraps elements into an interned certain choice point.
func (b *Builder) Certain(elems ...*Node) *Node {
	return b.Prob(b.Poss(1, elems...))
}

// InternNode deep-interns an existing subtree bottom-up, returning a
// canonical (maximally shared) equivalent. Nodes already canonical are
// returned unchanged; otherwise the spine above a deduplicated child is
// rebuilt.
func (b *Builder) InternNode(n *Node) *Node {
	if n == nil {
		return nil
	}
	if out, ok := b.memo[n]; ok {
		return out
	}
	kids := n.kids
	var newKids []*Node
	for i, k := range kids {
		nk := b.InternNode(k)
		if nk != k && newKids == nil {
			newKids = make([]*Node, len(kids))
			copy(newKids, kids[:i])
		}
		if newKids != nil {
			newKids[i] = nk
		}
	}
	rebuilt := n
	if newKids != nil {
		switch n.kind {
		case KindElem:
			rebuilt = NewElem(n.tag, n.text, newKids...)
		case KindPoss:
			rebuilt = NewPoss(n.prob, newKids...)
		default:
			rebuilt = NewProb(newKids...)
		}
	}
	out := b.Intern(rebuilt)
	b.memo[n] = out
	return out
}

// InternTree deep-interns a document (see InternNode). The result is
// Equal to the input with maximal physical sharing among equal subtrees.
func (b *Builder) InternTree(t *Tree) *Tree {
	return MustTree(b.InternNode(t.root))
}

// InternTree is a convenience for one-shot deep interning with a fresh
// builder-scoped table.
func InternTree(t *Tree) *Tree {
	return NewBuilder().InternTree(t)
}

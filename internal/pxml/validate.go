package pxml

import (
	"fmt"
	"math"
)

// ValidationError describes a structural violation of the layered
// probabilistic XML model, with a path from the root to the offending node.
type ValidationError struct {
	Path string // slash-separated description, e.g. /prob/poss[0]/movie/prob[1]
	Msg  string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("pxml: invalid document at %s: %s", e.Path, e.Msg)
}

// Validate checks the full layered-model invariants of the document:
//
//   - the root is a ProbNode,
//   - ProbNode children are PossNodes (at least one),
//   - PossNode children are ElemNodes and sibling probabilities sum to 1
//     within ProbEpsilon, each in (0, 1],
//   - ElemNode children are ProbNodes and tags are non-empty,
//   - the structure is acyclic (sharing is allowed, cycles are not).
//
// It returns the first violation found, or nil.
func (t *Tree) Validate() error {
	if t == nil || t.root == nil {
		return &ValidationError{Path: "/", Msg: "nil tree"}
	}
	if t.root.kind != KindProb {
		return &ValidationError{Path: "/", Msg: fmt.Sprintf("root must be prob, got %v", t.root.kind)}
	}
	// ok caches nodes already validated (sharing), onPath detects cycles.
	ok := make(map[*Node]bool)
	onPath := make(map[*Node]bool)
	var rec func(n *Node, path string) error
	rec = func(n *Node, path string) error {
		if n == nil {
			return &ValidationError{Path: path, Msg: "nil node"}
		}
		if onPath[n] {
			return &ValidationError{Path: path, Msg: "cycle detected"}
		}
		if ok[n] {
			return nil
		}
		onPath[n] = true
		defer delete(onPath, n)

		switch n.kind {
		case KindProb:
			if len(n.kids) == 0 {
				return &ValidationError{Path: path, Msg: "prob node without possibilities"}
			}
			sum := 0.0
			for i, k := range n.kids {
				if k == nil || k.kind != KindPoss {
					return &ValidationError{Path: childPath(path, n, i), Msg: "prob child must be poss"}
				}
				sum += k.prob
			}
			if math.Abs(sum-1) > ProbEpsilon*float64(len(n.kids)+1) {
				return &ValidationError{Path: path, Msg: fmt.Sprintf("possibility probabilities sum to %g, want 1", sum)}
			}
		case KindPoss:
			if n.prob <= 0 || n.prob > 1+ProbEpsilon || math.IsNaN(n.prob) {
				return &ValidationError{Path: path, Msg: fmt.Sprintf("probability %g out of range (0,1]", n.prob)}
			}
			for i, k := range n.kids {
				if k == nil || k.kind != KindElem {
					return &ValidationError{Path: childPath(path, n, i), Msg: "poss child must be element"}
				}
			}
		case KindElem:
			if n.tag == "" {
				return &ValidationError{Path: path, Msg: "element with empty tag"}
			}
			for i, k := range n.kids {
				if k == nil || k.kind != KindProb {
					return &ValidationError{Path: childPath(path, n, i), Msg: "element child must be prob"}
				}
			}
		default:
			return &ValidationError{Path: path, Msg: fmt.Sprintf("unknown kind %d", n.kind)}
		}
		for i, k := range n.kids {
			if err := rec(k, childPath(path, n, i)); err != nil {
				return err
			}
		}
		ok[n] = true
		return nil
	}
	return rec(t.root, "/")
}

func childPath(path string, parent *Node, i int) string {
	var label string
	switch parent.kind {
	case KindProb:
		label = fmt.Sprintf("poss[%d]", i)
	case KindPoss:
		if c := parent.kids[i]; c != nil && c.kind == KindElem {
			label = c.tag
		} else {
			label = fmt.Sprintf("elem[%d]", i)
		}
	default:
		label = fmt.Sprintf("prob[%d]", i)
	}
	if path == "/" {
		return "/" + label
	}
	return path + "/" + label
}

// Flat arena binary encoding of probabilistic documents — the payload
// format store v4 snapshots, binary WAL records and binary replication
// frames all carry. Where the XML codec rebuilds a tree node by node
// (re-interning each through the Builder), the arena form writes the
// physical DAG once in dependency order and reads it back into a single
// contiguous allocation:
//
//	[version 1B]
//	[string table: uvarint count, length-prefixed entries]
//	[uvarint node count]
//	[node records, children strictly before parents]
//	[root digest, 8B little endian]
//
// A node record is [kind 1B][kind fields][uvarint child count][child
// indices as uvarints]. Elem fields are the tag and text as string-table
// indices; poss fields are the 8-byte probability bits. Child indices
// always point at earlier records, so the encoding is acyclic by
// construction and physical sharing survives the round trip exactly.
// The trailing digest is the structural digest (Tree.Digest) of the
// encoded document, verified on decode.
//
// DecodeArena accepts arbitrary bytes safely: every declared count is
// capped against the input remaining, node records are re-validated
// against the layering invariants (Tree.Validate would accept every
// decoded tree), and bottom-up saturating estimates of the logical node
// count and world-count magnitude reject crafted DAGs whose summaries
// would explode before any summary is computed.
package pxml

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"repro/internal/codec"
)

// BinaryVersion is the self-contained revision of the arena encoding:
// the payload carries its own local string table.
const BinaryVersion = 1

// BinaryVersionShared is the shared-table revision: the payload carries
// no string table of its own — elem tag/text fields are indices into an
// external table (a codec strtab) supplied at decode time. Store v5
// documents and WAL v3 records use it so repeated tags across documents
// and ops are spelled once per table, not once per payload.
const BinaryVersionShared = 2

// Arena decode counters for /stats: total decodes, how many ran in
// zero-copy mode, and how many were shared-table payloads.
var arenaDecodes, arenaZeroCopy, arenaShared atomic.Uint64

// ArenaDecodeStats reports the process-wide arena decode counters.
func ArenaDecodeStats() (decodes, zeroCopy, shared uint64) {
	return arenaDecodes.Load(), arenaZeroCopy.Load(), arenaShared.Load()
}

// DecodeArenaOptions tunes DecodeArenaWith.
type DecodeArenaOptions struct {
	// Strings is the external table BinaryVersionShared payloads resolve
	// their tag/text indices against. Self-contained payloads ignore it.
	Strings []string
	// ZeroCopy keeps node tag/text strings as views into the input
	// buffer instead of copies. The caller must guarantee the buffer
	// outlives every tree that shares nodes with the decoded one and is
	// never modified — an mmap'd store file pinned for the process
	// lifetime, or a heap buffer the decoded strings themselves keep
	// alive. Applies to the local table of self-contained payloads;
	// shared-table payloads inherit whatever lifetime opts.Strings has.
	ZeroCopy bool
	// ExpectDigest, when set, replaces the decode-side digest
	// recomputation: the trailer digest is compared against this
	// already-known value instead of re-deriving it from the decoded
	// tree. Recomputation allocates a Summary per physical node, which
	// is exactly what the zero-copy load path exists to avoid; a caller
	// holding the manifest's digest can skip it without losing the
	// end-to-end check.
	ExpectDigest *uint64
	// ExpectLogical, when positive, is checked against the decoder's own
	// bottom-up logical node count — the manifest cross-check that Load
	// otherwise pays a full NodeCount() traversal for.
	ExpectLogical int64
}

// arenaOrder computes the postorder write order and node→index map the
// arena encodings share.
func (t *Tree) arenaOrder() (order []*Node, index map[*Node]uint64) {
	index = map[*Node]uint64{}
	// Iterative postorder so document depth never limits the encoder.
	type frame struct {
		n    *Node
		next int
	}
	stack := []frame{{n: t.root}}
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if _, done := index[top.n]; done {
			stack = stack[:len(stack)-1]
			continue
		}
		if top.next < len(top.n.kids) {
			k := top.n.kids[top.next]
			top.next++
			if _, done := index[k]; !done {
				stack = append(stack, frame{n: k})
			}
			continue
		}
		index[top.n] = uint64(len(order))
		order = append(order, top.n)
		stack = stack[:len(stack)-1]
	}
	return order, index
}

// appendArenaBody writes the node records, interning strings through
// intern.
func appendArenaBody(dst []byte, order []*Node, index map[*Node]uint64, intern func(string) uint64) []byte {
	for _, n := range order {
		dst = append(dst, byte(n.kind))
		switch n.kind {
		case KindElem:
			dst = codec.AppendUvarint(dst, intern(n.tag))
			dst = codec.AppendUvarint(dst, intern(n.text))
		case KindPoss:
			dst = codec.AppendFloat64(dst, n.prob)
		}
		dst = codec.AppendUvarint(dst, uint64(len(n.kids)))
		for _, k := range n.kids {
			dst = codec.AppendUvarint(dst, index[k])
		}
	}
	return dst
}

const (
	// maxLogicalNodes caps the decoded document's logical node count
	// (occurrences, counting shared subtrees once per reference). Deep
	// sharing lets a few hundred physical nodes imply astronomically many
	// logical ones; beyond 2^40 nothing downstream (stats, manifests)
	// could represent the document meaningfully anyway.
	maxLogicalNodes = uint64(1) << 40
	// maxWorldBits caps the magnitude of the world count: the number of
	// bits of the big.Int Summary would compute. 2^(2^20) worlds is far
	// beyond any legitimate document; without the cap a small crafted
	// input could make the digest check allocate megabit integers.
	maxWorldBits = uint64(1) << 20
)

// AppendBinary appends the document in flat arena form. The encoding
// preserves physical sharing: a subtree referenced from several parents
// is written once and referenced by index.
func (t *Tree) AppendBinary(dst []byte) []byte {
	var strings codec.StringTable
	order, index := t.arenaOrder()
	body := appendArenaBody(nil, order, index, strings.Intern)
	dst = append(dst, BinaryVersion)
	dst = strings.AppendTo(dst)
	dst = codec.AppendUvarint(dst, uint64(len(order)))
	dst = append(dst, body...)
	return codec.AppendUint64(dst, t.Digest())
}

// AppendBinaryShared appends the document in shared-table arena form:
// tag/text strings are interned into tab and the payload carries only
// their indices. A decoder needs tab's entries (shipped separately as a
// strtab delta) to resolve them.
func (t *Tree) AppendBinaryShared(dst []byte, tab *codec.SharedStrings) []byte {
	order, index := t.arenaOrder()
	dst = append(dst, BinaryVersionShared)
	dst = codec.AppendUvarint(dst, uint64(len(order)))
	dst = appendArenaBody(dst, order, index, tab.Intern)
	return codec.AppendUint64(dst, t.Digest())
}

// DecodeArena decodes a document encoded by AppendBinary: one sequential
// pass over the input into one contiguous node arena, then a digest
// check. Any input that is not a valid encoding of a valid document —
// truncation, layering violations, forged counts, digest mismatch —
// returns an error; DecodeArena never panics. The decoded tree satisfies
// every Tree.Validate invariant by construction.
func DecodeArena(data []byte) (*Tree, error) {
	return DecodeArenaWith(data, DecodeArenaOptions{})
}

// DecodeArenaWith decodes a self-contained (BinaryVersion) or
// shared-table (BinaryVersionShared) arena payload under opts. It keeps
// every safety property of DecodeArena; the opts only change where
// strings come from and how the trailer digest is checked.
func DecodeArenaWith(data []byte, opts DecodeArenaOptions) (*Tree, error) {
	r := codec.NewReader(data)
	v := r.Byte()
	if r.Err() == nil && v != BinaryVersion && v != BinaryVersionShared {
		return nil, fmt.Errorf("pxml: unsupported binary document version %d (want %d or %d)", v, BinaryVersion, BinaryVersionShared)
	}
	var strs []string
	if v == BinaryVersionShared {
		strs = opts.Strings
	} else if opts.ZeroCopy {
		strs = r.StringTableView()
	} else {
		strs = r.StringTable()
	}
	count := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Every node record costs at least two bytes (kind + child count), so
	// a count beyond half the remaining input is forged. This also bounds
	// the arena allocation by the input size.
	if count == 0 || count > uint64(r.Len())/2+1 {
		return nil, fmt.Errorf("%w: implausible node count %d for %d remaining bytes", codec.ErrInvalid, count, r.Len())
	}
	arena := make([]Node, count)
	var (
		idxBuf  []uint64 // child indices of all nodes, concatenated
		spans   = make([]int, count)
		logical = make([]uint64, count)
		wbits   = make([]uint64, count)
		refs    = make([]uint64, count) // incoming reference counts
	)
	for i := uint64(0); i < count; i++ {
		n := &arena[i]
		n.kind = Kind(r.Byte())
		switch n.kind {
		case KindProb:
		case KindPoss:
			p := r.Float64()
			if r.Err() == nil {
				if math.IsNaN(p) || p <= 0 || p > 1+ProbEpsilon {
					return nil, fmt.Errorf("%w: node %d probability %g out of range (0,1]", codec.ErrInvalid, i, p)
				}
				if p > 1 {
					p = 1
				}
				n.prob = p
			}
		case KindElem:
			tag := r.Uvarint()
			text := r.Uvarint()
			if r.Err() == nil {
				if tag >= uint64(len(strs)) || text >= uint64(len(strs)) {
					return nil, fmt.Errorf("%w: node %d references string %d of %d", codec.ErrInvalid, i, max(tag, text), len(strs))
				}
				if strs[tag] == "" {
					return nil, fmt.Errorf("%w: node %d has an empty tag", codec.ErrInvalid, i)
				}
				n.tag, n.text = strs[tag], strs[text]
			}
		default:
			if r.Err() == nil {
				return nil, fmt.Errorf("%w: node %d has unknown kind %d", codec.ErrInvalid, i, n.kind)
			}
		}
		nkids := r.Uvarint()
		if err := r.Err(); err != nil {
			return nil, err
		}
		// A child index costs at least one byte.
		if nkids > uint64(r.Len()) {
			return nil, fmt.Errorf("%w: node %d declares %d children with %d bytes remaining", codec.ErrInvalid, i, nkids, r.Len())
		}
		if n.kind == KindProb && nkids == 0 {
			return nil, fmt.Errorf("%w: node %d is a prob node without possibilities", codec.ErrInvalid, i)
		}
		var (
			logicalSum uint64 = 1
			bitsSum    uint64
			bitsMax    uint64
			probSum    float64
		)
		wantKid := childKind(n.kind)
		for j := uint64(0); j < nkids; j++ {
			k := r.Uvarint()
			if err := r.Err(); err != nil {
				return nil, err
			}
			if k >= i {
				return nil, fmt.Errorf("%w: node %d references child %d out of order", codec.ErrInvalid, i, k)
			}
			if arena[k].kind != wantKid {
				return nil, fmt.Errorf("%w: node %d (%v) child %d is %v, want %v", codec.ErrInvalid, i, n.kind, k, arena[k].kind, wantKid)
			}
			idxBuf = append(idxBuf, k)
			refs[k]++
			logicalSum = satAdd(logicalSum, logical[k])
			bitsSum = satAdd(bitsSum, wbits[k])
			if wbits[k] > bitsMax {
				bitsMax = wbits[k]
			}
			if n.kind == KindProb {
				probSum += arena[k].prob
			}
		}
		spans[i] = len(idxBuf)
		if n.kind == KindProb && math.Abs(probSum-1) > ProbEpsilon*float64(nkids+1) {
			return nil, fmt.Errorf("%w: node %d possibility probabilities sum to %g, want 1", codec.ErrInvalid, i, probSum)
		}
		logical[i] = logicalSum
		if logicalSum > maxLogicalNodes {
			return nil, fmt.Errorf("%w: logical node count exceeds %d", codec.ErrInvalid, maxLogicalNodes)
		}
		// Worlds sum across alternatives (prob) and multiply across
		// independent children (poss, elem); bound the bit length of the
		// result without computing it.
		if n.kind == KindProb {
			wbits[i] = satAdd(bitsMax, uint64(bits.Len64(nkids))+1)
		} else {
			wbits[i] = satAdd(bitsSum, 1)
		}
		if wbits[i] > maxWorldBits {
			return nil, fmt.Errorf("%w: world count magnitude exceeds 2^%d", codec.ErrInvalid, maxWorldBits)
		}
	}
	digest := r.Uint64()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	for i, rc := range refs[:count-1] {
		if rc == 0 {
			return nil, fmt.Errorf("%w: node %d is unreachable from the root", codec.ErrInvalid, i)
		}
	}
	root := &arena[count-1]
	if root.kind != KindProb {
		return nil, fmt.Errorf("%w: root must be a prob node, got %v", codec.ErrInvalid, root.kind)
	}
	// Wire up the kids only now that the arena is fully allocated: the
	// pointers stay valid because the backing array never moves again.
	kids := make([]*Node, len(idxBuf))
	for i, k := range idxBuf {
		kids[i] = &arena[k]
	}
	prev := 0
	for i := range arena {
		if end := spans[i]; end > prev {
			arena[i].kids = kids[prev:end:end]
			prev = end
		}
	}
	t := &Tree{root: root}
	if opts.ExpectLogical > 0 && logical[count-1] != uint64(opts.ExpectLogical) {
		return nil, fmt.Errorf("%w: document holds %d logical nodes, manifest says %d", codec.ErrInvalid, logical[count-1], opts.ExpectLogical)
	}
	if opts.ExpectDigest != nil {
		// The hot path: the caller already knows the digest (from a
		// checksummed manifest); comparing trailers skips the per-node
		// Summary allocation a recomputation would pay.
		if digest != *opts.ExpectDigest {
			return nil, fmt.Errorf("%w: document digest trailer %016x differs from expected %016x", codec.ErrInvalid, digest, *opts.ExpectDigest)
		}
	} else if got := t.Digest(); got != digest {
		return nil, fmt.Errorf("%w: document digest %016x differs from trailer %016x", codec.ErrInvalid, got, digest)
	}
	arenaDecodes.Add(1)
	if opts.ZeroCopy {
		arenaZeroCopy.Add(1)
	}
	if v == BinaryVersionShared {
		arenaShared.Add(1)
	}
	return t, nil
}

// childKind returns the only kind the layered model allows below k.
func childKind(k Kind) Kind {
	switch k {
	case KindProb:
		return KindPoss
	case KindPoss:
		return KindElem
	default:
		return KindProb
	}
}

func satAdd(a, b uint64) uint64 {
	if s := a + b; s >= a {
		return s
	}
	return math.MaxUint64
}

package pxml

import (
	"fmt"
	"strings"
)

// String renders the document as an indented sketch using the paper's
// symbols: ▽ for probability nodes, ○ for possibility nodes, plain tags for
// elements. Intended for debugging and test failure messages.
func (t *Tree) String() string {
	var b strings.Builder
	writeNode(&b, t.root, 0)
	return b.String()
}

// Sketch renders a subtree like Tree.String.
func Sketch(n *Node) string {
	var b strings.Builder
	writeNode(&b, n, 0)
	return b.String()
}

func writeNode(b *strings.Builder, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	switch n.kind {
	case KindProb:
		if len(n.kids) == 1 && n.kids[0].prob >= 1-ProbEpsilon {
			// Trivial choice point: compress to keep sketches readable.
			for _, k := range n.kids[0].kids {
				writeNode(b, k, depth)
			}
			return
		}
		fmt.Fprintf(b, "%s▽\n", indent)
	case KindPoss:
		fmt.Fprintf(b, "%s○ p=%.4g\n", indent, n.prob)
	case KindElem:
		if n.text != "" {
			fmt.Fprintf(b, "%s<%s> %q\n", indent, n.tag, n.text)
		} else {
			fmt.Fprintf(b, "%s<%s>\n", indent, n.tag)
		}
	}
	for _, k := range n.kids {
		writeNode(b, k, depth+1)
	}
}

package pxml

import (
	"math/big"
	"sort"
)

// TagSet is an immutable set of element tags. The zero value is the empty
// set. Sets are shared freely between node summaries, so they must never
// be mutated after construction.
type TagSet struct {
	m map[string]struct{}
}

// Has reports whether tag is in the set.
func (s *TagSet) Has(tag string) bool {
	if s == nil {
		return false
	}
	_, ok := s.m[tag]
	return ok
}

// HasAll reports whether every tag of the given set-as-map is present.
func (s *TagSet) HasAll(tags map[string]bool) bool {
	for t := range tags {
		if !s.Has(t) {
			return false
		}
	}
	return true
}

// Len returns the number of tags in the set.
func (s *TagSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.m)
}

// Tags returns the tags in sorted order.
func (s *TagSet) Tags() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.m))
	for t := range s.m {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// emptyTagSet is shared by all summaries of tag-free subtrees.
var emptyTagSet = &TagSet{}

// Summary is the cached static summary of one subtree: everything the
// query planner needs to reason about the subtree without walking it.
// Summaries are computed once per node (lazily, bottom-up) and shared;
// all fields must be treated as read-only. In particular Worlds is a
// shared *big.Int that callers must not mutate.
type Summary struct {
	// Digest is the structural digest of the subtree, consistent with
	// Hash and Equal: equal subtrees have equal digests.
	Digest uint64
	// Worlds is the number of possible worlds of the subtree. Read-only.
	Worlds *big.Int
	// Tags is the set of element tags occurring at or below this node
	// (including the node's own tag for elements). Read-only.
	Tags *TagSet
	// TextBloom is a 64-bit Bloom fingerprint of the element texts at or
	// below this node (TextBloomBits per text, OR-combined). A query
	// engine may conclude that a text t does NOT occur in the subtree
	// when TextBloom misses any bit of TextBloomBits(t); the converse
	// (bits present) proves nothing.
	TextBloom uint64
}

// TextBloomBits returns the Bloom mask of one text value: two bits
// derived from independent hash mixes, so a subtree fingerprint with few
// texts rarely false-positives on an absent value.
func TextBloomBits(s string) uint64 {
	h := uint64(14695981039346656037) // FNV-1a
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	// Two bit positions from distant parts of the hash.
	return 1<<(h&63) | 1<<((h>>32)&63)
}

var bigOne = big.NewInt(1)

// Summary returns the subtree's static summary, computing and caching it
// (and its descendants' summaries) on first use. It is safe for
// concurrent use: racing computations produce identical values and the
// last store wins harmlessly.
func (n *Node) Summary() *Summary {
	if s := n.summary.Load(); s != nil {
		return s
	}
	return computeSummary(n)
}

func computeSummary(n *Node) *Summary {
	if s := n.summary.Load(); s != nil {
		return s
	}
	kidSums := make([]*Summary, len(n.kids))
	for i, k := range n.kids {
		kidSums[i] = computeSummary(k)
	}
	s := &Summary{
		Digest: combineHash(n, func(k *Node) uint64 { return k.Summary().Digest }),
		Worlds: summaryWorlds(n, kidSums),
		Tags:   summaryTags(n, kidSums),
	}
	if n.text != "" {
		s.TextBloom = TextBloomBits(n.text)
	}
	for _, k := range kidSums {
		s.TextBloom |= k.TextBloom
	}
	n.summary.Store(s)
	return s
}

// summaryWorlds computes the world count from child summaries, sharing
// child big.Ints where the recurrence is the identity.
func summaryWorlds(n *Node, kids []*Summary) *big.Int {
	switch n.kind {
	case KindProb:
		// Alternatives are mutually exclusive: counts add.
		if len(kids) == 1 {
			return kids[0].Worlds
		}
		c := new(big.Int)
		for _, k := range kids {
			c.Add(c, k.Worlds)
		}
		return c
	default:
		// Children are independent: counts multiply.
		if len(kids) == 0 {
			return bigOne
		}
		if len(kids) == 1 {
			return kids[0].Worlds
		}
		c := big.NewInt(1)
		for _, k := range kids {
			c.Mul(c, k.Worlds)
		}
		return c
	}
}

// summaryTags unions the children's tag sets plus the node's own tag,
// reusing a child's set whenever the union adds nothing — long chains of
// wrapper nodes then share a single set.
func summaryTags(n *Node, kids []*Summary) *TagSet {
	own := ""
	if n.kind == KindElem {
		own = n.tag
	}
	var base *TagSet
	allSame := true
	for _, k := range kids {
		if base == nil {
			base = k.Tags
		} else if k.Tags != base {
			allSame = false
		}
	}
	if base != nil && allSame && (own == "" || base.Has(own)) {
		return base
	}
	if base == nil && own == "" {
		return emptyTagSet
	}
	m := make(map[string]struct{})
	if own != "" {
		m[own] = struct{}{}
	}
	for _, k := range kids {
		for t := range k.Tags.m {
			m[t] = struct{}{}
		}
	}
	return &TagSet{m: m}
}

// Summary returns the cached static summary of the document root.
func (t *Tree) Summary() *Summary { return t.root.Summary() }

// Digest returns the structural digest of the whole document. Equal trees
// (in the sense of Equal) have equal digests, so the digest identifies the
// document content — the key the result cache and index invalidation use.
func (t *Tree) Digest() uint64 { return t.root.Summary().Digest }

package pxml

import (
	"hash/fnv"
	"math"
	"strconv"
)

// Equal reports structural equality of two subtrees: same kinds, tags,
// texts, child order, and probabilities within ProbEpsilon. Shared pointers
// short-circuit, so comparing heavily shared documents stays cheap.
func Equal(a, b *Node) bool {
	return equalMemo(a, b, make(map[[2]*Node]bool))
}

func equalMemo(a, b *Node, memo map[[2]*Node]bool) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	key := [2]*Node{a, b}
	if v, ok := memo[key]; ok {
		return v
	}
	// Guard against cycles through the memo: optimistically assume equal
	// while descending; acyclic documents are unaffected.
	memo[key] = true
	eq := a.kind == b.kind &&
		a.tag == b.tag &&
		a.text == b.text &&
		math.Abs(a.prob-b.prob) <= ProbEpsilon &&
		len(a.kids) == len(b.kids)
	if eq {
		for i := range a.kids {
			if !equalMemo(a.kids[i], b.kids[i], memo) {
				eq = false
				break
			}
		}
	}
	memo[key] = eq
	return eq
}

// DeepEqualElems reports whether two element subtrees represent the same
// content, ignoring how certain children are grouped into trivial (single
// alternative, probability 1) choice points. This is the comparison behind
// the paper's generic rule "two deep-equal elements refer to the same rwo",
// and it makes compact and marker-preserving serializations compare equal.
// Genuine choice points must agree on alternative count, probabilities
// (within ProbEpsilon) and, recursively, alternative contents.
func DeepEqualElems(a, b *Node) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.kind != KindElem || b.kind != KindElem {
		return false
	}
	if a.tag != b.tag || a.text != b.text {
		return false
	}
	ac, bc := deepChildren(a), deepChildren(b)
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if !deepEqualAny(ac[i], bc[i]) {
			return false
		}
	}
	return true
}

// deepEqualAny compares two nodes that are either elements or genuine
// choice points, applying trivial-wrapper flattening at every level.
func deepEqualAny(a, b *Node) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindElem:
		return DeepEqualElems(a, b)
	case KindProb:
		if len(a.kids) != len(b.kids) {
			return false
		}
		for i := range a.kids {
			pa, pb := a.kids[i], b.kids[i]
			if math.Abs(pa.prob-pb.prob) > ProbEpsilon || len(pa.kids) != len(pb.kids) {
				return false
			}
			for j := range pa.kids {
				if !DeepEqualElems(pa.kids[j], pb.kids[j]) {
					return false
				}
			}
		}
		return true
	default:
		return Equal(a, b)
	}
}

// deepChildren flattens trivial choice points: for each ProbNode child with
// a single alternative it yields the alternative's elements; genuine choice
// points are yielded as-is.
func deepChildren(elem *Node) []*Node {
	var out []*Node
	for _, p := range elem.kids {
		if len(p.kids) == 1 {
			out = append(out, p.kids[0].kids...)
		} else {
			out = append(out, p)
		}
	}
	return out
}

// Hash returns a structural FNV-1a hash consistent with Equal: equal
// subtrees hash identically. Probabilities are quantized to ProbEpsilon
// resolution before hashing.
func Hash(n *Node) uint64 {
	return hashMemo(n, make(map[*Node]uint64))
}

func hashMemo(n *Node, memo map[*Node]uint64) uint64 {
	if n == nil {
		return 0
	}
	if s := n.summary.Load(); s != nil {
		return s.Digest
	}
	if h, ok := memo[n]; ok {
		return h
	}
	v := combineHash(n, func(k *Node) uint64 { return hashMemo(k, memo) })
	memo[n] = v
	return v
}

// combineHash computes a node's structural hash from its own fields and
// its children's hashes (obtained through kidHash). It is the single
// definition of the hash, shared by Hash and the Summary digest so the two
// can never drift apart.
func combineHash(n *Node, kidHash func(*Node) uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte{byte(n.kind)})
	h.Write([]byte(n.tag))
	h.Write([]byte{0})
	h.Write([]byte(n.text))
	h.Write([]byte{0})
	if n.kind == KindPoss {
		q := int64(math.Round(n.prob / ProbEpsilon))
		h.Write([]byte(strconv.FormatInt(q, 16)))
	}
	var buf [8]byte
	for _, k := range n.kids {
		kh := kidHash(k)
		for i := 0; i < 8; i++ {
			buf[i] = byte(kh >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

package pxml

import (
	"testing"

	"repro/internal/codec"
)

func TestBinarySharedRoundTrip(t *testing.T) {
	var tab codec.SharedStrings
	trees := []*Tree{
		binaryFixture(),
		CertainTree(NewLeaf("a", "x")),
		MustTree(NewProb(NewPoss(1))),
	}
	var payloads [][]byte
	for _, tr := range trees {
		payloads = append(payloads, tr.AppendBinaryShared(nil, &tab))
	}
	// All three payloads resolve against the one cumulative table — the
	// WAL-segment shape, where each record's delta extends the same table.
	strs := tab.Strings()
	for i, tr := range trees {
		got, err := DecodeArenaWith(payloads[i], DecodeArenaOptions{Strings: strs})
		if err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
		if !Equal(tr.Root(), got.Root()) {
			t.Fatalf("tree %d: round trip not Equal", i)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("tree %d: decoded tree invalid: %v", i, err)
		}
	}
	// Shared payloads spell no strings inline: re-encoding the fixture
	// against a warm table must be smaller than the self-contained form.
	if self := trees[0].AppendBinary(nil); len(payloads[0]) >= len(self) {
		t.Fatalf("shared payload %dB not smaller than self-contained %dB", len(payloads[0]), len(self))
	}
}

func TestBinarySharedRejectsBadIndex(t *testing.T) {
	var tab codec.SharedStrings
	tr := binaryFixture()
	payload := tr.AppendBinaryShared(nil, &tab)
	// Decoding against a short table must fail cleanly, not misresolve.
	short := tab.Strings()[:1]
	if _, err := DecodeArenaWith(payload, DecodeArenaOptions{Strings: short}); err == nil {
		t.Fatal("short table accepted")
	}
	if _, err := DecodeArenaWith(payload, DecodeArenaOptions{}); err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestDecodeArenaExpectedDigestAndLogical(t *testing.T) {
	tr := binaryFixture()
	data := tr.AppendBinary(nil)
	digest := tr.Digest()
	logical := tr.NodeCount()

	got, err := DecodeArenaWith(data, DecodeArenaOptions{
		ZeroCopy:      true,
		ExpectDigest:  &digest,
		ExpectLogical: logical,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tr.Root(), got.Root()) {
		t.Fatal("validated zero-copy decode not Equal")
	}

	wrong := digest ^ 1
	if _, err := DecodeArenaWith(data, DecodeArenaOptions{ExpectDigest: &wrong}); err == nil {
		t.Fatal("wrong expected digest accepted")
	}
	if _, err := DecodeArenaWith(data, DecodeArenaOptions{ExpectLogical: logical + 1}); err == nil {
		t.Fatal("wrong expected logical count accepted")
	}
}

func TestDecodeArenaZeroCopyMatchesCopying(t *testing.T) {
	tr := binaryFixture()
	data := tr.AppendBinary(nil)
	a, err := DecodeArenaWith(data, DecodeArenaOptions{ZeroCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeArena(data)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a.Root(), b.Root()) {
		t.Fatal("zero-copy and copying decodes differ")
	}
}

func FuzzDecodeArenaShared(f *testing.F) {
	var tab codec.SharedStrings
	f.Add(binaryFixture().AppendBinaryShared(nil, &tab))
	f.Add(CertainTree(NewLeaf("a", "x")).AppendBinaryShared(nil, &tab))
	strs := tab.Strings()
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeArenaWith(data, DecodeArenaOptions{Strings: strs})
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoded tree fails validation: %v", err)
		}
	})
}

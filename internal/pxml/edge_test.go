package pxml_test

import (
	"math/big"
	"testing"

	"repro/internal/pxml"
	"repro/internal/pxmltest"
)

func TestChoicePointsCountsDistinctGenuineOnly(t *testing.T) {
	// A shared genuine choice point used twice counts once.
	shared := pxml.NewProb(
		pxml.NewPoss(0.5, pxml.NewLeaf("v", "a")),
		pxml.NewPoss(0.5, pxml.NewLeaf("v", "b")),
	)
	tr := pxml.CertainTree(pxml.NewElem("r", "",
		pxml.Certain(pxml.NewElem("x", "", shared)),
		pxml.Certain(pxml.NewElem("y", "", shared)),
	))
	if got := tr.ChoicePoints(); got != 1 {
		t.Fatalf("ChoicePoints = %d, want 1 (shared)", got)
	}
	// But the world count treats each occurrence independently: 2×2.
	if got := tr.WorldCount(); got.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("WorldCount = %s, want 4", got)
	}
}

func TestMaxDepthOnKnownShape(t *testing.T) {
	// root prob(1) → poss(2) → elem(3) → prob(4) → poss(5) → leaf(6)
	tr := pxml.CertainTree(pxml.NewElem("a", "", pxml.Certain(pxml.NewLeaf("b", ""))))
	if got := tr.CollectStats().MaxDepth; got != 6 {
		t.Fatalf("MaxDepth = %d, want 6", got)
	}
}

func TestNormalizeSingleAltEmptyPossibilityStays(t *testing.T) {
	// An optional field: one alternative present, one absent; nothing to
	// merge, normalization is the identity.
	prob := pxml.NewProb(
		pxml.NewPoss(0.8, pxml.NewLeaf("tel", "1")),
		pxml.NewPoss(0.2),
	)
	tr := pxml.CertainTree(pxml.NewElem("p", "", prob))
	nt := tr.MustNormalize()
	if !pxml.Equal(tr.Root(), nt.Root()) {
		t.Fatalf("normalization changed an already-canonical tree:\n%s\nvs\n%s", tr, nt)
	}
	if nt.Root() == nil || tr.NodeCount() != nt.NodeCount() {
		t.Fatalf("counts differ")
	}
}

func TestNormalizeMergesEmptyAlternatives(t *testing.T) {
	prob := pxml.NewProb(
		pxml.NewPoss(0.3),
		pxml.NewPoss(0.3),
		pxml.NewPoss(0.4, pxml.NewLeaf("tel", "1")),
	)
	tr := pxml.CertainTree(pxml.NewElem("p", "", prob))
	nt := tr.MustNormalize()
	choice := nt.RootElements()[0].Child(0)
	if choice.NumChildren() != 2 {
		t.Fatalf("empty alternatives should merge: %d", choice.NumChildren())
	}
	if got := nt.WorldCount(); got.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("worlds = %s, want 2", got)
	}
}

func TestStatsKindBreakdown(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	s := tr.CollectStats()
	// Hand count from the fixture (29 total, see count_test.go):
	// prob: root + inner + tel-choice + 4 trivial wrappers in persons = ...
	if s.LogicalProb+s.LogicalPoss+s.LogicalElem != 29 {
		t.Fatalf("breakdown sums to %d", s.LogicalProb+s.LogicalPoss+s.LogicalElem)
	}
	// addressbook + merged person (nm + 2 tel alternatives) + two separate
	// persons (nm + tel each) = 1 + 4 + 3 + 3 = 11.
	if s.LogicalElem != 11 {
		t.Fatalf("elem count = %d, want 11", s.LogicalElem)
	}
}

func TestWalkUniqueSkipSubtree(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	count := 0
	pxml.WalkUnique(tr.Root(), func(n *pxml.Node) bool {
		count++
		return n.Kind() != pxml.KindElem // stop at first element level
	})
	if count == 0 {
		t.Fatalf("no visits")
	}
	full := 0
	pxml.WalkUnique(tr.Root(), func(*pxml.Node) bool { full++; return true })
	if count >= full {
		t.Fatalf("skipping did not reduce visits: %d vs %d", count, full)
	}
}

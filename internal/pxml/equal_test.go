package pxml_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pxml"
	"repro/internal/pxmltest"
)

func TestEqualBasics(t *testing.T) {
	a := pxml.NewElem("movie", "", pxml.Certain(pxml.NewLeaf("title", "Jaws")))
	b := pxml.NewElem("movie", "", pxml.Certain(pxml.NewLeaf("title", "Jaws")))
	c := pxml.NewElem("movie", "", pxml.Certain(pxml.NewLeaf("title", "Jaws 2")))
	if !pxml.Equal(a, b) {
		t.Fatalf("structurally equal trees reported unequal")
	}
	if pxml.Equal(a, c) {
		t.Fatalf("different trees reported equal")
	}
	if !pxml.Equal(a, a) {
		t.Fatalf("identity should be equal")
	}
	if pxml.Equal(a, nil) || pxml.Equal(nil, a) {
		t.Fatalf("nil comparisons should be false")
	}
	if !pxml.Equal(nil, nil) {
		t.Fatalf("nil == nil")
	}
}

func TestEqualProbabilityTolerance(t *testing.T) {
	mk := func(p float64) *pxml.Node {
		return pxml.NewProb(pxml.NewPoss(p, pxml.NewLeaf("a", "")), pxml.NewPoss(1-p))
	}
	if !pxml.Equal(mk(0.5), mk(0.5+1e-9)) {
		t.Fatalf("probabilities within epsilon should compare equal")
	}
	if pxml.Equal(mk(0.5), mk(0.6)) {
		t.Fatalf("different probabilities should compare unequal")
	}
}

func TestEqualDifferentKinds(t *testing.T) {
	if pxml.Equal(pxml.NewLeaf("a", ""), pxml.NewPoss(1)) {
		t.Fatalf("different kinds equal")
	}
	if pxml.Equal(pxml.NewLeaf("a", "x"), pxml.NewLeaf("a", "y")) {
		t.Fatalf("different text equal")
	}
	if pxml.Equal(pxml.NewLeaf("a", ""), pxml.NewLeaf("b", "")) {
		t.Fatalf("different tag equal")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := pxmltest.DefaultGenConfig()
	trees := make([]*pxml.Tree, 30)
	for i := range trees {
		trees[i] = pxmltest.RandomTree(rng, cfg)
	}
	for i, a := range trees {
		for j, b := range trees {
			eq := pxml.Equal(a.Root(), b.Root())
			ha, hb := pxml.Hash(a.Root()), pxml.Hash(b.Root())
			if eq && ha != hb {
				t.Fatalf("trees %d,%d equal but hashes differ", i, j)
			}
		}
	}
}

func TestHashDistinguishesSmallChanges(t *testing.T) {
	a := pxml.NewElem("movie", "", pxml.Certain(pxml.NewLeaf("title", "Jaws")))
	b := pxml.NewElem("movie", "", pxml.Certain(pxml.NewLeaf("title", "Jaw")))
	if pxml.Hash(a) == pxml.Hash(b) {
		t.Fatalf("hash collision on different titles (possible but indicates a bug at this scale)")
	}
	if pxml.Hash(nil) != 0 {
		t.Fatalf("nil hash should be 0")
	}
}

func TestDeepEqualElemsIgnoresTrivialChoiceBookkeeping(t *testing.T) {
	// Same content, one built with separate trivial choice points per child,
	// the other with a single grouped choice point.
	a := pxml.NewElem("person", "",
		pxml.Certain(pxml.NewLeaf("nm", "John")),
		pxml.Certain(pxml.NewLeaf("tel", "1111")),
	)
	b := pxml.NewElem("person", "",
		pxml.Certain(pxml.NewLeaf("nm", "John"), pxml.NewLeaf("tel", "1111")),
	)
	if !pxml.DeepEqualElems(a, b) {
		t.Fatalf("deep-equal should ignore trivial choice point grouping")
	}
	c := pxml.NewElem("person", "",
		pxml.Certain(pxml.NewLeaf("nm", "John"), pxml.NewLeaf("tel", "9999")),
	)
	if pxml.DeepEqualElems(a, c) {
		t.Fatalf("different phone numbers should not be deep-equal")
	}
	if pxml.DeepEqualElems(a, nil) || pxml.DeepEqualElems(nil, a) {
		t.Fatalf("nil deep-equal should be false")
	}
	if !pxml.DeepEqualElems(a, a) {
		t.Fatalf("identity deep-equal")
	}
	if pxml.DeepEqualElems(pxml.NewLeaf("a", "x"), pxml.NewLeaf("a", "y")) {
		t.Fatalf("different leaf text deep-equal")
	}
}

func TestDeepEqualElemsComparesUncertainPartsStructurally(t *testing.T) {
	mk := func(p float64) *pxml.Node {
		return pxml.NewElem("person", "",
			pxml.NewProb(
				pxml.NewPoss(p, pxml.NewLeaf("tel", "1111")),
				pxml.NewPoss(1-p, pxml.NewLeaf("tel", "2222")),
			),
		)
	}
	if !pxml.DeepEqualElems(mk(0.5), mk(0.5)) {
		t.Fatalf("identical uncertain elements should be deep-equal")
	}
	if pxml.DeepEqualElems(mk(0.5), mk(0.7)) {
		t.Fatalf("different choice probabilities should not be deep-equal")
	}
}

func TestEqualQuickProperty(t *testing.T) {
	// Property: for random seeds, a tree generated twice from the same seed
	// is Equal and hashes identically; trees from different seeds are
	// usually different (not asserted), but Equal must stay symmetric.
	f := func(seed int64) bool {
		cfg := pxmltest.DefaultGenConfig()
		a := pxmltest.RandomTree(rand.New(rand.NewSource(seed)), cfg)
		b := pxmltest.RandomTree(rand.New(rand.NewSource(seed)), cfg)
		if !pxml.Equal(a.Root(), b.Root()) {
			return false
		}
		if pxml.Hash(a.Root()) != pxml.Hash(b.Root()) {
			return false
		}
		c := pxmltest.RandomTree(rand.New(rand.NewSource(seed+1)), cfg)
		return pxml.Equal(a.Root(), c.Root()) == pxml.Equal(c.Root(), a.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

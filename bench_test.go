// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus micro-benchmarks of the core machinery. Shape targets
// (who wins, ratios, growth curves) are recorded in EXPERIMENTS.md; run
// with:
//
//	go test -bench=. -benchmem
package imprecise_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	imprecise "repro"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/explain"
	"repro/internal/integrate"
	"repro/internal/oracle"
	"repro/internal/pxml"
	"repro/internal/query"
	"repro/internal/queryindex"
	"repro/internal/replica"
	"repro/internal/store"
	"repro/internal/worlds"
	"repro/internal/xmlcodec"
)

// BenchmarkTableI regenerates Table I: the effect of rules on uncertainty.
// The reported "nodes" metric is the raw integration-result size per rule
// set; the paper's column is 13958/6015/243/154/29 (×100 nodes).
func BenchmarkTableI(b *testing.B) {
	pair := datagen.TableISources()
	schema := datagen.MovieDTD()
	for _, set := range []oracle.RuleSet{
		oracle.SetNone, oracle.SetGenre, oracle.SetTitle,
		oracle.SetGenreTitle, oracle.SetGenreTitleYear,
	} {
		b.Run(strings.ReplaceAll(set.String(), " ", "_"), func(b *testing.B) {
			var nodes int64
			for i := 0; i < b.N; i++ {
				res, _, err := integrate.Integrate(pair.A.Tree, pair.B.Tree, integrate.Config{
					Oracle:        oracle.MovieOracle(set),
					Schema:        schema,
					SkipNormalize: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				nodes = res.NodeCount()
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkFigure5 regenerates Figure 5: integration-result size while the
// IMDB source grows, for the two rule series the paper plots.
func BenchmarkFigure5(b *testing.B) {
	schema := datagen.MovieDTD()
	for _, set := range experiments.Figure5Sets {
		name := "title_only"
		if set == oracle.SetGenreTitleYear {
			name = "title_and_year"
		}
		for _, n := range []int{0, 12, 24, 36, 48, 60} {
			pair := datagen.Confusing(n, 1)
			b.Run(name+"/n="+strconv.Itoa(n), func(b *testing.B) {
				var nodes int64
				for i := 0; i < b.N; i++ {
					res, _, err := integrate.Integrate(pair.A.Tree, pair.B.Tree, integrate.Config{
						Oracle:        oracle.MovieOracle(set),
						Schema:        schema,
						SkipNormalize: true,
					})
					if err != nil {
						b.Fatal(err)
					}
					nodes = res.NodeCount()
				}
				b.ReportMetric(float64(nodes), "nodes")
			})
		}
	}
}

// BenchmarkTypicalConditions regenerates the §V "typical situation"
// result: 6 vs 60 movies with 2 shared rwos integrate into a handful of
// possible worlds with two undecided matches.
func BenchmarkTypicalConditions(b *testing.B) {
	var r experiments.TypicalResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Typical()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Nodes), "nodes")
	worldsF, _ := strconv.ParseFloat(r.Worlds.String(), 64)
	b.ReportMetric(worldsF, "worlds")
	b.ReportMetric(float64(r.Undecided), "undecided")
}

var queryDocOnce sync.Once
var queryDoc *pxml.Tree
var queryDocErr error

func queryDocument(b *testing.B) *pxml.Tree {
	queryDocOnce.Do(func() {
		queryDoc, queryDocErr = experiments.QueryDocument()
	})
	if queryDocErr != nil {
		b.Fatal(queryDocErr)
	}
	return queryDoc
}

// BenchmarkQueryHorror regenerates the first §VI example: the horror-movie
// query over the confusing integration, answered exactly despite hundreds
// of millions of possible worlds.
func BenchmarkQueryHorror(b *testing.B) {
	doc := queryDocument(b)
	q := query.MustCompile(experiments.HorrorQuery)
	b.ResetTimer()
	var top float64
	for i := 0; i < b.N; i++ {
		answers, err := query.EvalExact(doc, q, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(answers) == 0 {
			b.Fatal("no answers")
		}
		top = answers[0].P
	}
	b.ReportMetric(top, "topP")
}

// BenchmarkQueryJohn regenerates the second §VI example: movies directed
// by somebody named John, including the low-probability confusion
// artifact.
func BenchmarkQueryJohn(b *testing.B) {
	doc := queryDocument(b)
	q := query.MustCompile(experiments.JohnQuery)
	b.ResetTimer()
	var answers []query.Answer
	for i := 0; i < b.N; i++ {
		var err error
		answers, err = query.EvalExact(doc, q, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(answers)), "answers")
}

// BenchmarkAnswerQuality regenerates the §VII answer-quality experiment.
func BenchmarkAnswerQuality(b *testing.B) {
	var rows []experiments.QualityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Quality()
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[0].Report.F1, "F1_first")
	}
}

// BenchmarkAblationFactorization measures the design choice DESIGN.md
// calls out: factorizing independent match groups into separate choice
// points keeps the representation additive.
func BenchmarkAblationFactorization(b *testing.B) {
	pair := datagen.Typical(6, 12, 4, 5)
	schema := datagen.MovieDTD()
	for _, disable := range []bool{false, true} {
		name := "factored"
		if disable {
			name = "monolithic"
		}
		b.Run(name, func(b *testing.B) {
			var nodes int64
			for i := 0; i < b.N; i++ {
				res, _, err := integrate.Integrate(pair.A.Tree, pair.B.Tree, integrate.Config{
					Oracle:                        oracle.MovieOracle(oracle.SetGenreTitleYear),
					Schema:                        schema,
					SkipNormalize:                 true,
					DisableComponentFactorization: disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				nodes = res.NodeCount()
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkEvaluators compares the three query evaluation strategies on an
// enumerable document (DESIGN E9).
func BenchmarkEvaluators(b *testing.B) {
	pair := datagen.Confusing(6, 1)
	tree, _, err := integrate.Integrate(pair.A.Tree, pair.B.Tree, integrate.Config{
		Oracle: oracle.MovieOracle(oracle.SetGenreTitleYear),
		Schema: datagen.MovieDTD(),
	})
	if err != nil {
		b.Fatal(err)
	}
	q := query.MustCompile(experiments.HorrorQuery)
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := query.EvalExact(tree, q, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enumerate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := query.EvalEnumerate(tree, q, 1000000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sample1k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			query.EvalSample(tree, q, 1000, int64(i+1))
		}
	})
}

// BenchmarkIntegrateWorkers measures the parallel integration engine on a
// multi-component document across worker counts: the same confusing-movies
// integration that BenchmarkFigure5 sizes, now timed while the candidate
// components fan out over the pool. The components and workers metrics
// land in BENCH_integrate.json via the CI bench job, so the perf
// trajectory of the hot path accumulates data points per commit.
func BenchmarkIntegrateWorkers(b *testing.B) {
	pair := datagen.Confusing(48, 1)
	schema := datagen.MovieDTD()
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var stats *integrate.Stats
			for i := 0; i < b.N; i++ {
				_, st, err := integrate.Integrate(pair.A.Tree, pair.B.Tree, integrate.Config{
					Oracle:        oracle.MovieOracle(oracle.SetTitle),
					Schema:        schema,
					SkipNormalize: true,
					Workers:       workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				stats = st
			}
			b.ReportMetric(float64(stats.Components), "components")
			b.ReportMetric(float64(workers), "workers")
		})
	}
}

// BenchmarkIntegrateBatch measures the one-writer-lock batch ingest path
// against N sequential single-source integrations of the same documents.
func BenchmarkIntegrateBatch(b *testing.B) {
	sources := make([]string, 4)
	for i := range sources {
		pair := datagen.Typical(3, 6, 1, int64(i+1))
		src, err := xmlcodec.EncodeString(pair.B.Tree, xmlcodec.EncodeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		sources[i] = src
	}
	base := datagen.Typical(3, 6, 1, 99).A.Tree
	open := func() *imprecise.Database {
		db, err := imprecise.Open(base, imprecise.Config{Schema: datagen.MovieDTD()})
		if err != nil {
			b.Fatal(err)
		}
		return db
	}
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := open()
			readers := make([]io.Reader, len(sources))
			for j, s := range sources {
				readers[j] = strings.NewReader(s)
			}
			if _, _, err := db.IntegrateBatchXML(readers); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := open()
			for _, s := range sources {
				if _, err := db.IntegrateXMLString(s); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// --- planned query engine benchmarks ---
//
// The three benchmarks below track the query-latency trajectory the same
// way BenchmarkIntegrateWorkers tracks integration: CI converts them into
// a BENCH_query.json artifact per commit. Cold is the unindexed seed
// engine (compile-free, but re-walking the tree per query); Indexed is
// the planned engine against a prebuilt per-tree index (the serving hot
// path minus the result cache); ResultCacheHit is the full database path
// on a repeated query. The acceptance bar is Indexed >= 2x over Cold on
// selective queries.

var planBenchOnce sync.Once
var planBenchDoc *pxml.Tree
var planBenchErr error

// planBenchDocument integrates two confusing movie catalogs — a datagen
// tree with genuine uncertainty — once per benchmark run.
func planBenchDocument(b *testing.B) *pxml.Tree {
	planBenchOnce.Do(func() {
		pair := datagen.Confusing(36, 1)
		planBenchDoc, _, planBenchErr = integrate.Integrate(pair.A.Tree, pair.B.Tree, integrate.Config{
			Oracle: oracle.MovieOracle(oracle.SetGenreTitleYear),
			Schema: datagen.MovieDTD(),
		})
	})
	if planBenchErr != nil {
		b.Fatal(planBenchErr)
	}
	return planBenchDoc
}

// planBenchQuery is selective: it anchors on one franchise out of many,
// so value-set pruning skips most of the catalog in the per-value pass.
const planBenchQuery = `//movie[title="Jaws"]/year`

func BenchmarkQueryCold(b *testing.B) {
	doc := planBenchDocument(b)
	q := query.MustCompile(planBenchQuery)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := query.Eval(doc, q, query.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Answers) == 0 {
			b.Fatal("no answers")
		}
	}
}

func BenchmarkQueryIndexed(b *testing.B) {
	doc := planBenchDocument(b)
	q := query.MustCompile(planBenchQuery)
	idx := queryindex.Build(doc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := query.EvalIndexed(doc, q, query.Options{}, idx)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Answers) == 0 {
			b.Fatal("no answers")
		}
	}
}

func BenchmarkQueryResultCacheHit(b *testing.B) {
	doc := planBenchDocument(b)
	db, err := imprecise.Open(doc, imprecise.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Query(planBenchQuery); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(planBenchQuery)
		if err != nil {
			b.Fatal(err)
		}
		if res.Plan == nil || !res.Plan.CacheHit {
			b.Fatal("expected a result-cache hit")
		}
	}
}

// BenchmarkQueryIndexBuild measures the per-swap cost the indexed path
// pays up front.
func BenchmarkQueryIndexBuild(b *testing.B) {
	doc := planBenchDocument(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := queryindex.Build(doc)
		if idx.NumTags() == 0 {
			b.Fatal("empty index")
		}
	}
}

// wideBenchQuery is deliberately NON-selective: every movie title is an
// answer value, so the exact engine's per-value fail pass — the fan-out
// unit of the parallel executor — has dozens of independent tasks. This is
// the query where Workers>1 must pay off.
const wideBenchQuery = `//movie/title`

// BenchmarkQueryWorkers measures one cold exact evaluation across worker
// counts on the confusing movie corpus. Answers are bit-identical for
// every row (the determinism property test pins that); only the wall clock
// may differ. The acceptance bar is workers=8 >= 2.5x over workers=1 on a
// multi-core box; on fewer cores the curve flattens at NumCPU, and the
// inline-fallback design keeps the 1-core overhead marginal.
func BenchmarkQueryWorkers(b *testing.B) {
	doc := planBenchDocument(b)
	q := query.MustCompile(wideBenchQuery)
	idx := queryindex.Build(doc)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(strconv.Itoa(workers), func(b *testing.B) {
			var nAnswers int
			for i := 0; i < b.N; i++ {
				res, err := query.EvalIndexed(doc, q, query.Options{
					Method:  query.MethodExact,
					Workers: workers,
				}, idx)
				if err != nil {
					b.Fatal(err)
				}
				nAnswers = len(res.Answers)
			}
			b.ReportMetric(float64(nAnswers), "answers")
			b.ReportMetric(float64(workers), "workers")
		})
	}
}

// BenchmarkQueryConcurrentClients measures the serving path under client
// concurrency: GOMAXPROCS goroutines issuing the same query against one
// database. After the first evaluation every request is a result-cache hit
// on the sharded cache, so this row tracks read-side lock contention — the
// regression guard for the single-global-mutex cache this PR replaced.
func BenchmarkQueryConcurrentClients(b *testing.B) {
	doc := planBenchDocument(b)
	db, err := imprecise.Open(doc, imprecise.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Query(wideBenchQuery); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := db.Query(wideBenchQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	st := db.ResultCacheStats()
	b.ReportMetric(float64(st.Shards), "shards")
}

// BenchmarkResultCacheContention hammers the result cache from parallel
// goroutines with a hit-heavy mix over many distinct keys — the access
// pattern of a busy server. Sub-benchmarks compare a sharded cache against
// a single-shard one of the same capacity, so the sharding payoff (and any
// regression back toward a global lock) is one ratio in BENCH_query.json.
func BenchmarkResultCacheContention(b *testing.B) {
	res := query.Result{Method: query.MethodExact}
	for _, cfg := range []struct {
		name string
		cap  int
	}{
		{"sharded", 1024},
		{"single", 32}, // below the sharding threshold: one global lock
	} {
		b.Run(cfg.name, func(b *testing.B) {
			c := query.NewResultCache(cfg.cap)
			const keys = 24
			for i := 0; i < keys; i++ {
				c.Put(uint64(i), wideBenchQuery, query.Options{}, res)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, ok := c.Get(uint64(i%keys), wideBenchQuery, query.Options{}); !ok {
						c.Put(uint64(i%keys), wideBenchQuery, query.Options{}, res)
					}
					i++
				}
			})
		})
	}
}

// --- micro benchmarks of the core machinery ---

func BenchmarkIntegrateFigure2(b *testing.B) {
	a, err := xmlcodec.DecodeString(`<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`)
	if err != nil {
		b.Fatal(err)
	}
	bb, err := xmlcodec.DecodeString(`<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`)
	if err != nil {
		b.Fatal(err)
	}
	schema := imprecise.MustParseDTD(`
		<!ELEMENT addressbook (person*)>
		<!ELEMENT person (nm, tel?)>
		<!ELEMENT nm (#PCDATA)>
		<!ELEMENT tel (#PCDATA)>`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := integrate.Integrate(a, bb, integrate.Config{Oracle: oracle.New(nil), Schema: schema}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNodeCount(b *testing.B) {
	doc := queryDocument(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc.NodeCount()
	}
}

func BenchmarkWorldCount(b *testing.B) {
	doc := queryDocument(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc.WorldCount()
	}
}

func BenchmarkWorldSampling(b *testing.B) {
	doc := queryDocument(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		worlds.Sample(doc, rng)
	}
}

func BenchmarkNormalize(b *testing.B) {
	pair := datagen.TableISources()
	res, _, err := integrate.Integrate(pair.A.Tree, pair.B.Tree, integrate.Config{
		Oracle:        oracle.MovieOracle(oracle.SetGenreTitle),
		Schema:        datagen.MovieDTD(),
		SkipNormalize: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Normalize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	doc := queryDocument(b)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xmlcodec.EncodeString(doc, xmlcodec.EncodeOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	out, err := xmlcodec.EncodeString(doc, xmlcodec.EncodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xmlcodec.DecodeString(out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkConditionAbsent(b *testing.B) {
	doc := queryDocument(b)
	q := query.MustCompile(`//movie/title`)
	// Pick an uncertain title to reject.
	answers, err := query.EvalExact(doc, q, 0)
	if err != nil {
		b.Fatal(err)
	}
	victim := ""
	for _, a := range answers {
		if a.P < 0.9 {
			victim = a.Value
			break
		}
	}
	if victim == "" {
		b.Fatal("no uncertain title")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := query.ConditionAbsent(doc, q, victim, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := query.Compile(experiments.JohnQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpectedCount(b *testing.B) {
	doc := queryDocument(b)
	q := query.MustCompile(`//movie[.//genre="Horror"]`)
	b.ResetTimer()
	var e float64
	for i := 0; i < b.N; i++ {
		var err error
		e, err = query.ExpectedCount(doc, q, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(e, "E[count]")
}

func BenchmarkExplainAnswer(b *testing.B) {
	doc := queryDocument(b)
	q := query.MustCompile(experiments.JohnQuery)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := explain.Answer(doc, q, "Mission: Impossible", explain.Options{MaxChoices: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreSaveLoad(b *testing.B) {
	doc := queryDocument(b)
	dir := b.TempDir()
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := store.Save(dir, doc, datagen.MovieDTD(), ""); err != nil {
				b.Fatal(err)
			}
		}
	})
	if _, err := store.Save(dir, doc, datagen.MovieDTD(), ""); err != nil {
		b.Fatal(err)
	}
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := store.Load(dir); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnapshotLoad measures store.Load over every snapshot layout
// recovery can meet, on a datagen movie document: the v5 arena document
// via mmap (the default), the same v5 directory with mmap disabled (the
// read-whole fallback), a hand-written v4 directory (the self-contained
// frame the previous release saved), and the v3 marker-XML escape
// hatch. Load is the recovery and replica-bootstrap hot path; the
// allocation column of the mmap row against the v4 row is the zero-copy
// payoff.
func BenchmarkSnapshotLoad(b *testing.B) {
	doc := planBenchDocument(b)
	saveCurrent := func(enc string) func(*testing.B, string) {
		return func(b *testing.B, dir string) {
			if _, err := store.SaveWith(dir, doc, datagen.MovieDTD(), store.SaveOptions{Encoding: enc}); err != nil {
				b.Fatal(err)
			}
		}
	}
	saveV4 := func(b *testing.B, dir string) {
		// The v4 release wrote one self-contained document frame; Save has
		// moved on to v5, so lay the old format down by hand.
		payload := codec.AppendFrame(nil, codec.KindDocument, pxml.BinaryVersion, doc.AppendBinary(nil))
		sum := sha256.Sum256(payload)
		m := store.Manifest{
			FormatVersion:  4,
			SavedAt:        time.Now().UTC(),
			DocumentFile:   "document-" + hex.EncodeToString(sum[:6]) + ".bin",
			DocumentSHA256: hex.EncodeToString(sum[:]),
			TreeDigest:     fmt.Sprintf("%016x", doc.Digest()),
			LogicalNodes:   doc.NodeCount(),
			Worlds:         doc.WorldCount().String(),
		}
		mdata, err := json.Marshal(m)
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, m.DocumentFile), payload, 0o644); err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "manifest.json"), mdata, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range []struct {
		name string
		prep func(*testing.B, string)
		opts store.LoadOptions
	}{
		{"v5-mmap", saveCurrent(store.EncodingBinary), store.LoadOptions{}},
		{"v5-read", saveCurrent(store.EncodingBinary), store.LoadOptions{DisableMMap: true}},
		{"v4", saveV4, store.LoadOptions{}},
		{"v3-xml", saveCurrent(store.EncodingXML), store.LoadOptions{}},
	} {
		b.Run(row.name, func(b *testing.B) {
			dir := b.TempDir()
			row.prep(b, dir)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.LoadWith(dir, row.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCodecRoundTrip compares the two document codecs head to head
// on the same datagen movie document: the flat arena format
// (pxml.AppendBinary / pxml.DecodeArena) against marker XML. The
// payload_bytes metric shows the size ratio next to the speed ratio.
func BenchmarkCodecRoundTrip(b *testing.B) {
	doc := planBenchDocument(b)
	bin := doc.AppendBinary(nil)
	xml, err := xmlcodec.EncodeString(doc, xmlcodec.EncodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("binary/encode", func(b *testing.B) {
		buf := make([]byte, 0, len(bin))
		for i := 0; i < b.N; i++ {
			buf = doc.AppendBinary(buf[:0])
		}
		b.ReportMetric(float64(len(buf)), "payload_bytes")
	})
	b.Run("binary/decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pxml.DecodeArena(bin); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(bin)), "payload_bytes")
	})
	b.Run("xml/encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xmlcodec.EncodeString(doc, xmlcodec.EncodeOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(xml)), "payload_bytes")
	})
	b.Run("xml/decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xmlcodec.DecodeString(xml); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(xml)), "payload_bytes")
	})
}

const benchBookSource = `<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`

// walEncodings drives the json/binary sub-benchmarks of the durability
// and replication suites: "binary" is the default hot-path format,
// "json" the v1 format kept as the compatibility baseline. The ratio
// between the two sub-results is the codec layer's payoff.
var walEncodings = []string{"binary", "json"}

// BenchmarkWALAppend measures the durable-commit path per encoding: one
// journaled mutation = one CRC-framed, fsynced write-ahead record of a
// datagen movie document, so the record-encoding cost is visible next
// to the fsync. The binary rows split on the shared string table: the
// default interns tag/text strings once per segment, the nostrtab row
// re-encodes every string into every record — the walbytes/op gap is
// the strtab payoff.
func BenchmarkWALAppend(b *testing.B) {
	doc := planBenchDocument(b)
	for _, cfg := range []struct {
		name     string
		enc      string
		nostrtab bool
	}{
		{"binary", "binary", false},
		{"binary-nostrtab", "binary", true},
		{"json", "json", false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			cat, err := imprecise.OpenCatalog(b.TempDir(), imprecise.CatalogOptions{
				RootTag:          "catalog",
				CompactEvery:     -1,
				WALEncoding:      cfg.enc,
				DisableWALStrTab: cfg.nostrtab,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cat.Close()
			db, err := cat.Create("bench")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// ReplaceTree journals the whole document: a fixed-size
				// record, so the numbers isolate the append path.
				if err := db.Core().ReplaceTree(doc); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := db.Stats()
			b.ReportMetric(float64(st.WAL.AppendedBytes)/float64(st.WAL.Appends), "walbytes/op")
		})
	}
}

// copyBenchDir clones a benchmark data directory file by file.
func copyBenchDir(b *testing.B, src, dst string) {
	b.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if info.IsDir() {
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRecovery measures catalog open over the disk state a crash
// leaves behind, per WAL encoding: a snapshot plus a write-ahead tail
// of 32 replayable datagen-document ops. The template directory is
// built once (and never cleanly closed, so the tail survives); every
// iteration recovers a fresh copy of it. Replay cost is decode-bound,
// so this is the benchmark where the binary record format must earn
// its keep.
func BenchmarkRecovery(b *testing.B) {
	doc := planBenchDocument(b)
	for _, enc := range walEncodings {
		b.Run(enc, func(b *testing.B) {
			staging := b.TempDir()
			opts := imprecise.CatalogOptions{
				RootTag:      "catalog",
				CompactEvery: -1,
				WALEncoding:  enc,
			}
			cat, err := imprecise.OpenCatalog(staging, opts)
			if err != nil {
				b.Fatal(err)
			}
			db, err := cat.Create("bench")
			if err != nil {
				b.Fatal(err)
			}
			if err := db.Core().ReplaceTree(doc); err != nil {
				b.Fatal(err)
			}
			if err := db.Compact(); err != nil {
				b.Fatal(err)
			}
			const tailOps = 32
			for i := 0; i < tailOps; i++ {
				if err := db.Core().ReplaceTree(doc); err != nil {
					b.Fatal(err)
				}
			}
			// Deliberately no cat.Close(): a clean shutdown would compact
			// the tail away. The staging catalog stays open (its lock is
			// on the staging dir only); iterations run on copies.
			replayed := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				copyBenchDir(b, staging, dir)
				b.StartTimer()
				c, err := imprecise.OpenCatalog(dir, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				d, err := c.Get("bench")
				if err != nil {
					b.Fatal(err)
				}
				replayed = d.Stats().RecoveredOps
				if replayed != tailOps {
					b.Fatalf("recovered %d ops, want %d", replayed, tailOps)
				}
				if err := c.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(replayed), "replayedops")
			runtime.KeepAlive(cat)
		})
	}
}

// BenchmarkReplicationShip measures the log-shipping wire end to end
// over HTTP loopback, per negotiated encoding: a primary holding a
// fixed journaled history of datagen-document ops; each iteration
// fetches and decodes that history in WAL pages exactly as a
// follower's tailer does (server side: disk read, then a raw byte copy
// on the binary wire or decode + JSON render on the fallback; client
// side: wire decode + negotiation). The follower's
// re-journal fsync is deliberately outside the loop — it is
// storage-bound and identical under both encodings; the end-to-end
// commit-to-visible path is BenchmarkReplicationTail.
func BenchmarkReplicationShip(b *testing.B) {
	treeA := planBenchDocument(b)
	treeB := datagen.Confusing(12, 2).A.Tree
	cat, err := imprecise.OpenCatalog(b.TempDir(), imprecise.CatalogOptions{
		RootTag:      "catalog",
		CompactEvery: -1, // keep every op shippable: no compaction
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cat.Close()
	db, err := cat.Create("bench")
	if err != nil {
		b.Fatal(err)
	}
	const ops = 64
	for i := 0; i < ops; i++ {
		// Alternating replace ops: fixed-size records, so the numbers
		// isolate shipping, not integration.
		t := treeA
		if i%2 == 1 {
			t = treeB
		}
		if err := db.Core().ReplaceTree(t); err != nil {
			b.Fatal(err)
		}
	}
	ts := httptest.NewServer(imprecise.NewCatalogHTTPHandler(cat, imprecise.ServerOptions{}))
	defer ts.Close()
	for _, cfg := range []struct {
		name    string
		accept  string // Accept header; empty = JSON fallback
		deflate bool   // offer Accept-Encoding: deflate
	}{
		{"binary", replica.ContentTypeBinary2, false},
		{"binary+flate", replica.ContentTypeBinary2, true},
		{"json", "", false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			client := ts.Client()
			var wireBytes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var since uint64
				shipped := 0
				for shipped < ops {
					req, err := http.NewRequest(http.MethodGet,
						fmt.Sprintf("%s/dbs/bench/wal?since=%d&limit=16", ts.URL, since), nil)
					if err != nil {
						b.Fatal(err)
					}
					if cfg.accept != "" {
						req.Header.Set("Accept", cfg.accept)
					}
					if cfg.deflate {
						req.Header.Set("Accept-Encoding", replica.ContentEncodingDeflate)
					}
					resp, err := client.Do(req)
					if err != nil {
						b.Fatal(err)
					}
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("wal fetch status %d", resp.StatusCode)
					}
					// Read the raw body first so wirebytes/op counts what
					// actually crossed the wire, then decode from memory.
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						b.Fatal(err)
					}
					wireBytes += int64(len(body))
					gotBinary := strings.HasPrefix(resp.Header.Get("Content-Type"), replica.ContentTypeBinary)
					gotDeflate := resp.Header.Get("Content-Encoding") == replica.ContentEncodingDeflate
					if gotBinary != (cfg.accept != "") || gotDeflate != cfg.deflate {
						b.Fatalf("%s negotiated binary=%v deflate=%v", cfg.name, gotBinary, gotDeflate)
					}
					var page *replica.WALPage
					switch {
					case gotDeflate:
						page, err = replica.DecodeWALPageDeflate(bytes.NewReader(body))
					case gotBinary:
						page, err = replica.DecodeWALPage(bytes.NewReader(body))
					default:
						page = &replica.WALPage{}
						err = json.Unmarshal(body, page)
					}
					if err != nil {
						b.Fatal(err)
					}
					if len(page.Records) == 0 {
						b.Fatal("empty page before catch-up")
					}
					shipped += len(page.Records)
					since = page.Records[len(page.Records)-1].Seq
				}
			}
			elapsed := b.Elapsed()
			b.StopTimer()
			b.ReportMetric(float64(ops*b.N)/elapsed.Seconds(), "shipped_ops/s")
			b.ReportMetric(float64(wireBytes)/float64(ops*b.N), "wirebytes/op")
		})
	}
}

// BenchmarkReplicationTail measures steady-state shipping latency: the
// follower is already caught up, and each iteration commits one op on
// the primary and waits until the follower has durably applied it —
// commit-to-visible-on-replica, long-poll wakeup included.
func BenchmarkReplicationTail(b *testing.B) {
	cat, err := imprecise.OpenCatalog(b.TempDir(), imprecise.CatalogOptions{
		RootTag:      "addressbook",
		CompactEvery: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cat.Close()
	db, err := cat.Create("bench")
	if err != nil {
		b.Fatal(err)
	}
	tree, err := xmlcodec.DecodeString(benchBookSource)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(imprecise.NewCatalogHTTPHandler(cat, imprecise.ServerOptions{}))
	defer ts.Close()
	rep, err := imprecise.OpenReplica(b.TempDir(), imprecise.ReplicaOptions{
		Primary:         ts.URL,
		Catalog:         imprecise.CatalogOptions{RootTag: "addressbook"},
		PollWait:        2 * time.Second,
		MembershipEvery: 20 * time.Millisecond,
		MinBackoff:      10 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rep.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	err = rep.WaitCaughtUp(ctx)
	cancel()
	if err != nil {
		b.Fatal(err)
	}
	fdb, err := rep.Catalog().Get("bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Core().ReplaceTree(tree); err != nil {
			b.Fatal(err)
		}
		want := db.LastSeq()
		for fdb.LastSeq() < want {
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// --- failover ---

// failoverCluster builds a primary at ts with n committed ops and a
// caught-up follower, returning the pieces a failover benchmark needs.
// The returned stop function kills the primary's listener (the crash the
// promotion recovers from).
func failoverCluster(b *testing.B, n int) (rep *imprecise.Replica, repURL string, stopPrimary func(), closeAll func()) {
	b.Helper()
	cat, err := imprecise.OpenCatalog(b.TempDir(), imprecise.CatalogOptions{
		RootTag:      "addressbook",
		CompactEvery: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	db, err := cat.Create("bench")
	if err != nil {
		b.Fatal(err)
	}
	tree, err := xmlcodec.DecodeString(benchBookSource)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := db.Core().ReplaceTree(tree); err != nil {
			b.Fatal(err)
		}
	}
	ts := httptest.NewServer(imprecise.NewCatalogHTTPHandler(cat, imprecise.ServerOptions{}))
	rep, err = imprecise.OpenReplica(b.TempDir(), imprecise.ReplicaOptions{
		Primary:         ts.URL,
		Catalog:         imprecise.CatalogOptions{RootTag: "addressbook"},
		PollWait:        200 * time.Millisecond,
		MembershipEvery: 20 * time.Millisecond,
		MinBackoff:      10 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	err = rep.WaitCaughtUp(ctx)
	cancel()
	if err != nil {
		b.Fatal(err)
	}
	rts := httptest.NewServer(imprecise.NewReplicaHTTPHandler(rep, imprecise.ServerOptions{}))
	return rep, rts.URL, ts.Close, func() {
		rts.Close()
		ts.Close()
		rep.Close()
		cat.Close()
	}
}

// promoteNode POSTs /promote and fails the benchmark on anything but 200.
func promoteNode(b *testing.B, repURL string) {
	b.Helper()
	resp, err := http.Post(repURL+"/promote", "application/json", strings.NewReader(`{}`))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("promote: status %d", resp.StatusCode)
	}
}

// BenchmarkFailoverPromote measures time-to-promote: the primary (100
// committed ops, follower caught up) dies, and the clock runs from the
// POST /promote until the follower answers as a primary — final drain
// attempt, epoch raise + durable fence, and role flip included.
func BenchmarkFailoverPromote(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_, repURL, stopPrimary, closeAll := failoverCluster(b, 100)
		stopPrimary()
		b.StartTimer()
		promoteNode(b, repURL)
		b.StopTimer()
		closeAll()
		b.StartTimer()
	}
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "promote_ms")
}

// BenchmarkFailoverSteadyOps measures the promoted node as a working
// primary: after the failover completes, b.N ops commit against it. The
// ops/s of the NEW primary is the cluster's post-failover write capacity.
func BenchmarkFailoverSteadyOps(b *testing.B) {
	rep, repURL, stopPrimary, closeAll := failoverCluster(b, 10)
	defer closeAll()
	stopPrimary()
	promoteNode(b, repURL)
	db, err := rep.Catalog().Get("bench")
	if err != nil {
		b.Fatal(err)
	}
	tree, err := xmlcodec.DecodeString(benchBookSource)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Core().ReplaceTree(tree); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steady_ops/s")
}

// BenchmarkFailoverCatchup measures post-promotion catch-up: a fresh
// follower bootstraps from the PROMOTED primary — epoch-stamped snapshot
// plus b.N epoch-1 log records — until it serves. This is the time to
// restore read capacity after a failover.
func BenchmarkFailoverCatchup(b *testing.B) {
	rep, repURL, stopPrimary, closeAll := failoverCluster(b, 10)
	defer closeAll()
	stopPrimary()
	promoteNode(b, repURL)
	db, err := rep.Catalog().Get("bench")
	if err != nil {
		b.Fatal(err)
	}
	tree, err := xmlcodec.DecodeString(benchBookSource)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := db.Core().ReplaceTree(tree); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	rep2, err := imprecise.OpenReplica(b.TempDir(), imprecise.ReplicaOptions{
		Primary:         repURL,
		Catalog:         imprecise.CatalogOptions{RootTag: "addressbook"},
		PollWait:        200 * time.Millisecond,
		MembershipEvery: 20 * time.Millisecond,
		MinBackoff:      10 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	err = rep2.WaitCaughtUp(ctx)
	cancel()
	if err != nil {
		b.Fatal(err)
	}
	elapsed := b.Elapsed()
	b.StopTimer()
	if err := rep2.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(elapsed.Milliseconds()), "catchup_ms")
}

// --- ingest pipeline benchmarks ---
//
// The three benchmarks below size the incremental ingest pipeline: the
// cross-call memo (cold = every verdict computed, warm = served from the
// memo; the acceptance bar is warm >= 3x cold) and the async queue under
// sustained load (ingest throughput plus read p99 during ingest vs idle;
// the bar is busy p99 within 2x of idle). CI converts them into
// BENCH_integrate.json per commit.

// memoBenchConfig is the integration the memo benchmarks repeat.
func memoBenchConfig(memo *integrate.Memo) integrate.Config {
	return integrate.Config{
		Oracle:        oracle.MovieOracle(oracle.SetGenreTitleYear),
		Schema:        datagen.MovieDTD(),
		SkipNormalize: true,
		Memo:          memo,
	}
}

// BenchmarkIntegrateMemoCold integrates with a fresh memo every
// iteration: all oracle verdicts and merges are computed.
func BenchmarkIntegrateMemoCold(b *testing.B) {
	pair := datagen.Confusing(36, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, st, err := integrate.Integrate(pair.A.Tree, pair.B.Tree, memoBenchConfig(integrate.NewMemo(0)))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(st.OracleCalls), "oraclecalls")
		}
	}
}

// BenchmarkIntegrateMemoWarm repeats the same integration against one
// pre-warmed memo: the repeated work is answered from the digest tables.
func BenchmarkIntegrateMemoWarm(b *testing.B) {
	pair := datagen.Confusing(36, 1)
	memo := integrate.NewMemo(0)
	if _, _, err := integrate.Integrate(pair.A.Tree, pair.B.Tree, memoBenchConfig(memo)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var st *integrate.Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, st, err = integrate.Integrate(pair.A.Tree, pair.B.Tree, memoBenchConfig(memo))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.OracleCalls), "oraclecalls")
	b.ReportMetric(float64(st.VerdictMemoHits+st.MergeMemoHits), "memohits")
}

// benchPercentile returns the p-th percentile of the sample set.
func benchPercentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// BenchmarkSustainedIngest streams sources through the async queue while
// a reader keeps querying: reported are ingest throughput and the read
// p99 while ingesting next to the idle read p99.
func BenchmarkSustainedIngest(b *testing.B) {
	const nSources = 24
	sources := make([]*pxml.Tree, nSources)
	for i := range sources {
		sources[i] = datagen.Typical(1, 2, 1, int64(i+1)).B.Tree
	}
	base := datagen.Typical(3, 6, 1, 99).A.Tree
	readQuery := `//movie/title`

	for i := 0; i < b.N; i++ {
		db, err := imprecise.Open(base, imprecise.Config{
			Schema:      datagen.MovieDTD(),
			IngestDepth: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		timedRead := func() time.Duration {
			t0 := time.Now()
			if _, err := db.Query(readQuery); err != nil {
				b.Fatal(err)
			}
			return time.Since(t0)
		}
		var idle []time.Duration
		for j := 0; j < 300; j++ {
			idle = append(idle, timedRead())
		}

		db.StartIngest()
		start := time.Now()
		var busy []time.Duration
		for _, src := range sources {
			for {
				if _, err := db.Enqueue([]*pxml.Tree{src}); err == nil {
					break
				} else if !errors.Is(err, core.ErrQueueFull) {
					b.Fatal(err)
				}
				busy = append(busy, timedRead()) // backpressure: read while waiting
			}
			busy = append(busy, timedRead())
		}
		for db.IngestStats().Depth > 0 {
			busy = append(busy, timedRead())
		}
		elapsed := time.Since(start)
		db.StopIngest()
		if got := db.IngestStats().Applied; got != nSources {
			b.Fatalf("applied %d of %d sources", got, nSources)
		}

		b.ReportMetric(float64(nSources)/elapsed.Seconds(), "ingest_ops/s")
		b.ReportMetric(float64(benchPercentile(busy, 0.99).Microseconds())/1000, "read_p99_ms")
		b.ReportMetric(float64(benchPercentile(idle, 0.99).Microseconds())/1000, "idle_read_p99_ms")
	}
}
